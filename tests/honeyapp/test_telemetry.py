"""Telemetry payload, honey app, and collection-server tests."""

import random

import pytest

from repro.honeyapp.analysis import CampaignWindow, HoneyExperimentAnalysis
from repro.honeyapp.app import HONEY_PACKAGE, HoneyApp, HoneyAppNotInstalledError
from repro.honeyapp.server import TelemetryServer
from repro.honeyapp.telemetry import (
    EVENT_OPEN,
    EVENT_RECORD_CLICK,
    TelemetryPayload,
    build_payload,
    sanitize_ssid,
)
from repro.net.client import HttpClient
from repro.net.ip import AsnDatabase
from repro.users.devices import DeviceFactory
from tests.conftest import make_client


_FACTORIES = {}


def make_device(rng, kind="real"):
    # One factory per RNG so device ids stay unique within a test.
    factory = _FACTORIES.get(id(rng))
    if factory is None:
        factory = DeviceFactory(AsnDatabase(), rng)
        _FACTORIES[id(rng)] = factory
    if kind == "emulator":
        return factory.emulator()
    return factory.real_phone("US")


class TestPayload:
    def test_build_payload_sanitizes(self, rng):
        device = make_device(rng)
        device.install("com.whatsapp")
        payload = build_payload(EVENT_OPEN, device, day=3, hour=14.5)
        assert payload.ssid_hash != device.profile.ssid
        assert len(payload.ssid_hash) == 16
        assert payload.ip_slash24.endswith(".0/24")
        assert str(device.address) not in payload.ip_slash24
        assert "com.whatsapp" in payload.installed_packages

    def test_json_round_trip(self, rng):
        device = make_device(rng)
        payload = build_payload(EVENT_RECORD_CLICK, device, day=0, hour=1.25)
        assert TelemetryPayload.from_json(payload.to_json()) == payload

    def test_payload_contains_no_raw_identifiers(self, rng):
        device = make_device(rng)
        payload = build_payload(EVENT_OPEN, device, day=0, hour=0.0)
        serialized = str(payload.to_json())
        assert device.profile.ssid not in serialized
        assert str(device.address) not in serialized
        for forbidden in ("imei", "imsi"):
            assert forbidden not in serialized.lower()

    def test_invalid_event_rejected(self, rng):
        device = make_device(rng)
        with pytest.raises(ValueError):
            build_payload("location_ping", device, day=0, hour=0.0)

    def test_invalid_hour_rejected(self, rng):
        device = make_device(rng)
        with pytest.raises(ValueError):
            build_payload(EVENT_OPEN, device, day=0, hour=24.0)

    def test_ssid_hash_deterministic_and_distinct(self):
        assert sanitize_ssid("home-1") == sanitize_ssid("home-1")
        assert sanitize_ssid("home-1") != sanitize_ssid("home-2")


@pytest.fixture()
def collector(fabric, root_ca, rng):
    return TelemetryServer(fabric, root_ca, rng)


def make_honey_app(fabric, trust_store, rng, device):
    client = HttpClient(fabric, device.endpoint, trust_store, rng)
    device.install(HONEY_PACKAGE)
    return HoneyApp(device, client)


class TestHoneyAppAndServer:
    def test_open_uploads_event(self, fabric, trust_store, rng, collector):
        device = make_device(rng)
        app = make_honey_app(fabric, trust_store, rng, device)
        app.open(day=1, hour=10.0)
        assert collector.devices_that_opened() == {device.device_id}
        assert app.upload_failures == 0

    def test_record_click_uploads_and_counts(self, fabric, trust_store, rng,
                                             collector):
        device = make_device(rng)
        app = make_honey_app(fabric, trust_store, rng, device)
        app.open(day=1, hour=10.0)
        app.click_record(day=1, hour=10.1)
        assert collector.devices_that_clicked() == {device.device_id}
        assert len(app.memos_recorded) == 1

    def test_requires_install(self, fabric, trust_store, rng, collector):
        device = make_device(rng)
        client = HttpClient(fabric, device.endpoint, trust_store, rng)
        app = HoneyApp(device, client)
        with pytest.raises(HoneyAppNotInstalledError):
            app.open(day=0, hour=0.0)

    def test_server_records_source_asn_kind(self, fabric, trust_store, rng,
                                            collector):
        emulator = make_device(rng, kind="emulator")
        app = make_honey_app(fabric, trust_store, rng, emulator)
        app.open(day=0, hour=0.0)
        stored = collector.events[0]
        assert stored.source_asn_kind == "datacenter"

    def test_server_rejects_malformed_payload(self, fabric, trust_store, rng,
                                              collector):
        device = make_device(rng)
        client = HttpClient(fabric, device.endpoint, trust_store, rng)
        response = client.post_json(collector.hostname, "/v1/telemetry",
                                    {"event": "open"})
        assert response.status == 400
        assert collector.events == []

    def test_upload_failure_does_not_crash_app(self, fabric, trust_store, rng,
                                               collector):
        device = make_device(rng)
        app = make_honey_app(fabric, trust_store, rng, device)
        fabric.inject_fault(collector.hostname, 443, ConnectionError("down"))
        app.open(day=0, hour=1.0)
        assert app.upload_failures == 1

    def test_no_plaintext_telemetry_on_wire(self, fabric, trust_store, rng,
                                            collector):
        from repro.net.fabric import PacketCapture
        capture = PacketCapture(fabric)
        device = make_device(rng)
        app = make_honey_app(fabric, trust_store, rng, device)
        app.open(day=0, hour=1.0)
        for frame in capture.payloads_to(collector.hostname):
            assert b"installed_packages" not in frame


class TestAnalysisAttribution:
    def _run(self, fabric, trust_store, rng, collector):
        windows = [
            CampaignWindow("Fyber", "c-fyber", 0, 4),
            CampaignWindow("RankApp", "c-rank", 10, 14),
        ]
        fyber_device = make_device(rng)
        rank_device = make_device(rng)
        for device, day in ((fyber_device, 1), (rank_device, 11)):
            app = make_honey_app(fabric, trust_store, rng, device)
            app.open(day=day, hour=2.0)
            if device is fyber_device:
                app.click_record(day=day, hour=2.1)
                app.click_record(day=day + 1, hour=9.0)
        console = {"c-fyber": 3, "c-rank": 2}  # one install never opened each
        install_days = {"c-fyber": [(1, 1.0), (1, 2.0), (1, 3.0)],
                        "c-rank": [(11, 0.0), (12, 6.0)]}
        return HoneyExperimentAnalysis(windows, collector, console,
                                       install_days)

    def test_devices_attributed_by_window(self, fabric, trust_store, rng,
                                          collector):
        analysis = self._run(fabric, trust_store, rng, collector)
        assert len(analysis.devices_for("Fyber")) == 1
        assert len(analysis.devices_for("RankApp")) == 1

    def test_acquisition_missing_telemetry(self, fabric, trust_store, rng,
                                           collector):
        analysis = self._run(fabric, trust_store, rng, collector)
        by_iip = {s.iip_name: s for s in analysis.acquisition()}
        assert by_iip["Fyber"].installs == 3
        assert by_iip["Fyber"].missing_telemetry == 2
        assert by_iip["RankApp"].missing_fraction == pytest.approx(0.5)
        assert by_iip["Fyber"].delivery_hours == pytest.approx(2.0)
        assert analysis.total_installs() == 5

    def test_engagement_and_day_after(self, fabric, trust_store, rng,
                                      collector):
        analysis = self._run(fabric, trust_store, rng, collector)
        by_iip = {s.iip_name: s for s in analysis.engagement()}
        assert by_iip["Fyber"].clicked_record == 1
        assert by_iip["Fyber"].clicked_day_after == 1
        assert by_iip["RankApp"].clicked_record == 0
        assert by_iip["Fyber"].click_rate == pytest.approx(1 / 3)
