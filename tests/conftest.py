"""Shared fixtures: a fabric with a CA, an HTTPS echo server, a client."""

from __future__ import annotations

import random

import pytest

from repro.net.client import HttpClient
from repro.net.fabric import Endpoint, NetworkFabric
from repro.net.http import HttpResponse
from repro.net.server import HttpsServer
from repro.net.tls import CertificateAuthority, TrustStore, issue_server_identity


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture()
def fabric():
    return NetworkFabric()


@pytest.fixture()
def root_ca(rng):
    return CertificateAuthority("Example Root CA", rng)


@pytest.fixture()
def trust_store(root_ca):
    store = TrustStore()
    store.add_root(root_ca.self_certificate())
    return store


def make_https_server(fabric, root_ca, rng, hostname="api.example.com"):
    """An HTTPS server with /echo and /json routes, on a fresh address."""
    asn = fabric.asn_db.datacenter_asns()[0]
    address = fabric.asn_db.allocate(asn.number, rng)
    identity = issue_server_identity(root_ca, hostname, rng)
    server = HttpsServer(fabric, hostname, address, identity, rng)

    def echo(request, context):
        return HttpResponse.text_response(request.body.decode("utf-8"))

    def json_route(request, context):
        return HttpResponse.json_response({
            "path": request.path,
            "query": request.query,
            "client": str(context.client_address),
        })

    server.router.post("/echo", echo)
    server.router.get("/json", json_route)
    return server


@pytest.fixture()
def https_server(fabric, root_ca, rng):
    return make_https_server(fabric, root_ca, rng)


def make_client(fabric, trust_store, rng, country="US", proxy=None, pins=None):
    asn = fabric.asn_db.asns_in_country(country, kind="eyeball")[0]
    address = fabric.asn_db.allocate(asn.number, rng)
    endpoint = Endpoint(address=address)
    return HttpClient(fabric, endpoint, trust_store, rng,
                      proxy=proxy, pinned_fingerprints=pins)


@pytest.fixture()
def client(fabric, trust_store, rng):
    return make_client(fabric, trust_store, rng)
