"""InstallEventBus under service duty: fan-out, replay, watermark."""

import pytest

from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.lockstep import DetectorConfig
from repro.detection.stream import InstallEventBus, OnlineLockstepDetector


def event(device_id, package="com.app", day=0, hour=0.0):
    return DeviceInstallEvent(
        device_id=device_id,
        package=package,
        day=day,
        hour=hour,
        ip_slash24="198.51.100.0/24",
        ssid_hash="ssid:cafef00d",
        opened=True,
        engagement_seconds=30.0,
    )


class TestFanOut:
    def test_every_subscriber_sees_every_event_in_order(self):
        bus = InstallEventBus()
        first, second = [], []
        bus.subscribe(first.append)
        bus.subscribe(second.append)
        events = [event(f"d{i}", hour=float(i)) for i in range(4)]
        bus.publish_all(events)
        assert first == events
        assert second == events
        assert bus.events_published == 4

    def test_late_subscriber_without_replay_misses_history(self):
        bus = InstallEventBus()
        early, late = [], []
        bus.subscribe(early.append)
        bus.publish(event("d0"))
        bus.subscribe(late.append)
        bus.publish(event("d1", hour=1.0))
        assert [e.device_id for e in early] == ["d0", "d1"]
        assert [e.device_id for e in late] == ["d1"]


class TestReplay:
    def test_retaining_bus_replays_history_then_streams_live(self):
        bus = InstallEventBus(retain=True)
        bus.publish_all([event(f"d{i}", hour=float(i)) for i in range(3)])
        seen = []
        bus.subscribe(seen.append, replay=True)
        bus.publish(event("d3", hour=3.0))
        assert [e.device_id for e in seen] == ["d0", "d1", "d2", "d3"]
        assert bus.retains_events
        assert len(bus.retained_events) == 4

    def test_replayed_subscriber_converges_to_a_live_one(self):
        bus = InstallEventBus(retain=True)
        live = InstallLog()
        bus.subscribe(live.add)
        bus.publish_all([event(f"d{i}", hour=float(i)) for i in range(5)])
        late = InstallLog()
        bus.subscribe(late.add, replay=True)
        bus.publish(event("d5", hour=5.0))
        assert late.events() == live.events()

    def test_replay_without_retention_is_an_error(self):
        bus = InstallEventBus()
        with pytest.raises(ValueError, match="retain"):
            bus.subscribe(lambda e: None, replay=True)

    def test_default_bus_retains_nothing(self):
        bus = InstallEventBus()
        bus.publish(event("d0"))
        assert not bus.retains_events
        assert bus.retained_events == []


class TestWatermarkUnderQueries:
    def test_watermark_moves_monotonically_between_queries(self):
        config = DetectorConfig(min_burst_size=3, burst_window_hours=1.0,
                                min_bursts_per_device=1)
        detector = OnlineLockstepDetector(config)
        bus = InstallEventBus()
        bus.subscribe(detector.ingest)
        watermarks = [detector.watermark_hours]
        for step in range(6):
            bus.publish(event(f"d{step % 3}", hour=float(step)))
            # Interleave reads the way the serve flagged endpoint does.
            detector.flagged_packages()
            detector.flagged_devices
            watermarks.append(detector.watermark_hours)
        assert watermarks[0] == float("-inf")
        assert watermarks[1:] == sorted(watermarks[1:])
        assert watermarks[-1] == 5.0

    def test_regressing_event_is_rejected(self):
        detector = OnlineLockstepDetector()
        detector.ingest(event("d0", hour=6.0))
        with pytest.raises(ValueError, match="watermark"):
            detector.ingest(event("d1", hour=2.0))
