"""Hardened lockstep detection: unit mechanics and the recovery claim."""

from repro.core.honey_experiment import HoneyAppExperiment
from repro.core.wild_measurement import WildMeasurement, WildMeasurementConfig
from repro.detection.evaluation import evaluate_detector
from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.hardened import (HardenedDetectorConfig,
                                      HardenedLockstepDetector)
from repro.detection.live import HONEY_DETECTOR_CONFIG
from repro.scenarios import parse_scenario
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World


def event(device, package="app.x", day=0, hour=1.0, opened=False,
          engagement=0.0, slash24="10.0.0", ssid="ssid-a"):
    return DeviceInstallEvent(device_id=device, package=package, day=day,
                              hour=hour, ip_slash24=slash24, ssid_hash=ssid,
                              opened=opened, engagement_seconds=engagement)


class TestAdaptiveBursts:
    def test_scattered_sub_bursts_chain_into_one_cluster(self):
        # Three sub-bursts of 4, each 1.5 h apart — too sparse for any
        # 6-hour fixed window at min_burst 12, but the gaps stay under
        # max_gap_hours so density chaining joins them.
        log = InstallLog(
            event(f"dev-{batch}-{i}", hour=2.0 + batch * 1.5 + i * 0.01)
            for batch in range(3) for i in range(4))
        clusters = HardenedLockstepDetector().find_bursts(log)
        assert len(clusters) == 1
        assert len(clusters[0].device_ids) == 12

    def test_organic_trickle_never_chains(self):
        # Installs hours apart: every chain breaks below min_cluster_size.
        log = InstallLog(event(f"dev-{i}", hour=float(i * 3)) for i in range(8))
        assert HardenedLockstepDetector().find_bursts(log) == []

    def test_cover_traffic_does_not_dissolve_the_burst(self):
        # 70% of the burst fakes real engagement; the loosened
        # min_low_engagement_fraction still keeps the cluster.
        log = InstallLog(
            event(f"dev-{i}", hour=2.0 + i * 0.05, opened=i < 7,
                  engagement=600.0 if i < 7 else 0.0)
            for i in range(10))
        clusters = HardenedLockstepDetector().find_bursts(log)
        assert len(clusters) == 1


class TestCoInstallGraph:
    def test_shared_packages_build_degree(self):
        events = []
        for device in ("worker-1", "worker-2", "worker-3"):
            events.append(event(device, package="app.a", hour=1.0))
            events.append(event(device, package="app.b", hour=2.0))
        events.append(event("organic-1", package="app.a", hour=1.1))
        log = InstallLog(events)
        detector = HardenedLockstepDetector()
        degrees = detector.graph_degrees(log, set(log.devices()))
        assert degrees["worker-1"] == 2
        assert degrees["organic-1"] == 0


class TestFromHoney:
    def run_honey(self, installs):
        world = World(seed=2019)
        hook = world.detection_hook("honey", config=HONEY_DETECTOR_CONFIG)
        HoneyAppExperiment(world, installs_per_iip=installs, shards=1,
                           detection=hook).run()
        return hook

    def test_calibration_is_scale_stable_and_matches_defaults(self):
        # The derivation reads honey observables that do not move with
        # the purchase volume (burst span, engagement floor), so buying
        # more honey installs must not change the calibration — and at
        # the pinned bench seed it reproduces the class defaults.
        hook = self.run_honey(120)
        config = HardenedDetectorConfig.from_honey(hook.log,
                                                   hook.incentivized)
        assert config == HardenedDetectorConfig()


class TestEvasiveRecovery:
    DAYS = 8
    SCALE = 0.03

    def run_wild(self, profile):
        pack = parse_scenario(profile)
        world = World(seed=7)
        hook = world.detection_hook("wild")
        scenario = WildScenario(world, WildScenarioConfig(
            scale=self.SCALE, measurement_days=self.DAYS, scenario=pack))
        scenario.build()
        WildMeasurement(world, scenario, WildMeasurementConfig(
            measurement_days=self.DAYS, shards=1), detection=hook).run()
        return hook

    def hardened_report(self, hook, config=None):
        flagged = HardenedLockstepDetector(config).flag_devices(hook.log)
        universe = set(hook.log.devices())
        return evaluate_detector(flagged, hook.incentivized & universe,
                                 universe)

    def test_evasion_degrades_naive_and_hardened_recovers(self):
        naive_report = self.run_wild("naive").evaluate()
        hook = self.run_wild("evasive")
        evaded_report = hook.evaluate()
        # Evasion guts the naive fixed-window detector...
        assert evaded_report.recall < naive_report.recall / 2
        # ...and the hardened detector claws recall back without
        # giving up precision.
        recovered = self.hardened_report(hook)
        assert recovered.recall >= 0.45
        assert recovered.recall > 3 * evaded_report.recall
        assert recovered.precision >= 0.95

    def test_threshold_sweep_is_monotone(self):
        # Raising flag_threshold can only shrink the flagged set, so
        # recall is non-increasing across the sweep and the sets nest.
        hook = self.run_wild("evasive")
        previous = None
        previous_recall = None
        for threshold in (1.0, 2.0, 3.0, 4.0):
            config = HardenedDetectorConfig(flag_threshold=threshold)
            flagged = HardenedLockstepDetector(config).flag_devices(hook.log)
            if previous is not None:
                assert flagged <= previous
            universe = set(hook.log.devices())
            report = evaluate_detector(flagged,
                                       hook.incentivized & universe, universe)
            if previous_recall is not None:
                assert report.recall <= previous_recall
            previous, previous_recall = flagged, report.recall
