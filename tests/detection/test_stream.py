"""Streaming detector: batch/stream equivalence and the event bus."""

import pytest

from repro.detection.bridge import TrainingCorpusConfig, build_training_corpus
from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.lockstep import DetectorConfig, LockstepDetector
from repro.detection.stream import InstallEventBus, OnlineLockstepDetector
from repro.obs import Observability


def event(device, package, day=0, hour=10.0, block="10.0.0.0/24",
          ssid="aaaa", opened=False, engagement=30.0):
    return DeviceInstallEvent(
        device_id=device, package=package, day=day, hour=hour,
        ip_slash24=block, ssid_hash=ssid, opened=opened,
        engagement_seconds=engagement)


def stream_order(events):
    return sorted(events,
                  key=lambda e: (e.timestamp_hours, e.device_id, e.package))


def replay(events, config=None, obs=None):
    online = OnlineLockstepDetector(config, obs=obs)
    for item in stream_order(events):
        online.ingest(item)
    return online


class TestBatchStreamEquivalence:
    def test_training_corpus_converges_to_batch(self):
        log, _ = build_training_corpus(seed=5)
        batch = LockstepDetector().flag_devices(log)
        online = replay(log.events())
        assert online.finalize() == batch
        assert online.finalize() == batch  # idempotent

    @pytest.mark.parametrize("seed", [1, 9, 42])
    def test_equivalence_across_seeds(self, seed):
        config = TrainingCorpusConfig(organic_devices=150,
                                      workers_per_campaign=40, days=8)
        log, _ = build_training_corpus(seed=seed, config=config)
        detector_config = DetectorConfig()
        batch = LockstepDetector(detector_config).flag_devices(log)
        online = replay(log.events(), detector_config)
        assert online.finalize() == batch

    def test_cluster_lists_match_batch(self):
        log, _ = build_training_corpus(seed=5)
        batch_clusters = LockstepDetector().find_bursts(log)
        online = replay(log.events())
        online.finalize()
        assert sorted(online.clusters,
                      key=lambda c: (c.package, c.start_hour)) == \
            sorted(batch_clusters, key=lambda c: (c.package, c.start_hour))

    def test_two_burst_log_matches_batch(self):
        events = []
        for day in (1, 3):
            for i in range(15):
                events.append(event(f"w{i}", "com.offer", day=day,
                                    hour=9.0 + i * 0.1))
        batch = LockstepDetector().flag_devices(InstallLog(events))
        online = replay(events)
        assert online.finalize() == batch == {f"w{i}" for i in range(15)}


class TestIncrementalBehaviour:
    def test_devices_flagged_before_finalize(self):
        # Two closed bursts of the same workers, then a much later
        # unrelated event that pushes the watermark: the farm must be
        # flagged mid-stream, before any finalize call.
        events = []
        for day in (1, 3):
            for i in range(15):
                events.append(event(f"w{i}", "com.offer", day=day,
                                    hour=9.0 + i * 0.1))
        events.append(event("late", "com.other", day=9))
        online = OnlineLockstepDetector()
        for item in stream_order(events):
            online.ingest(item)
        assert online.flagged_devices == {f"w{i}" for i in range(15)}

    def test_flagged_set_grows_monotonically(self):
        log, _ = build_training_corpus(seed=5)
        online = OnlineLockstepDetector()
        seen = set()
        for item in stream_order(log.events()):
            online.ingest(item)
            current = online.flagged_devices
            assert seen <= current
            seen = current
        assert seen <= online.finalize()

    def test_out_of_order_event_rejected(self):
        online = OnlineLockstepDetector()
        online.ingest(event("d1", "com.a", day=2))
        with pytest.raises(ValueError, match="watermark"):
            online.ingest(event("d2", "com.b", day=1))

    def test_tie_timestamps_accepted(self):
        online = OnlineLockstepDetector()
        online.ingest(event("d1", "com.a", day=1, hour=9.0))
        online.ingest(event("d2", "com.a", day=1, hour=9.0))
        assert online.events_seen == 2

    def test_window_not_closed_while_extendable(self):
        # 14 events inside one window, watermark still within reach:
        # nothing may be emitted yet; a 15th event joins the burst.
        online = OnlineLockstepDetector()
        for i in range(14):
            online.ingest(event(f"d{i}", "com.a", hour=9.0 + i * 0.1))
        assert online.clusters == []
        online.ingest(event("d14", "com.a", hour=11.0))
        assert online.finalize()
        assert online.clusters[0].size == 15

    def test_obs_counters(self):
        obs = Observability()
        bus = InstallEventBus(obs, source="test")
        online = OnlineLockstepDetector(obs=obs)
        bus.subscribe(online.ingest)
        for day in (1, 3):
            for i in range(15):
                bus.publish(event(f"w{i}", "com.offer", day=day,
                                  hour=9.0 + i * 0.1))
        online.finalize()
        total = obs.metrics.counter_total
        assert total("detection.events_ingested") == 30
        assert total("detection.clusters_flagged") == 2
        assert total("detection.flagged_devices") == 15


class TestInstallEventBus:
    def test_fanout_order_and_count(self):
        bus = InstallEventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        items = [event(f"d{i}", "com.a", hour=float(i)) for i in range(3)]
        bus.publish_all(items)
        assert seen_a == items == seen_b
        assert bus.events_published == 3

    def test_source_label_on_counter(self):
        obs = Observability()
        bus = InstallEventBus(obs, source="honey")
        bus.publish(event("d1", "com.a"))
        counters = obs.metrics.counters()
        assert counters["detection.events_ingested{source=honey}"] == 1
