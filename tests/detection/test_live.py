"""Live detection hooked into both core pipelines.

Small scales keep these fast; the full-size lanes live in the detect
CI job and ``benchmarks/test_bench_detect.py``.
"""

import pytest

from repro.core.honey_experiment import HoneyAppExperiment
from repro.core.wild_measurement import WildMeasurement, WildMeasurementConfig
from repro.detection.lockstep import LockstepDetector
from repro.detection.live import HONEY_DETECTOR_CONFIG
from repro.obs import Observability
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World

WILD_DAYS = 8
WILD_SCALE = 0.03


def run_honey(seed=11, shards=1, obs=None):
    world = World(seed=seed, obs=obs)
    hook = world.detection_hook("honey", config=HONEY_DETECTOR_CONFIG)
    HoneyAppExperiment(world, installs_per_iip=120, shards=shards,
                       detection=hook).run()
    return world, hook


def run_wild(seed=7, shards=1, obs=None, chaos=None):
    world = World(seed=seed, obs=obs, chaos=chaos)
    hook = world.detection_hook("wild")
    scenario = WildScenario(world, WildScenarioConfig(
        scale=WILD_SCALE, measurement_days=WILD_DAYS))
    scenario.build()
    WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=WILD_DAYS, shards=shards), detection=hook).run()
    return world, hook


class TestHoneySource:
    def test_every_delivered_install_becomes_an_event(self):
        _world, hook = run_honey()
        # 120 purchased per IIP scales the paper's delivery counts.
        assert hook.bus.events_published == 150 + 132 + 121
        assert len(hook.incentivized) == hook.bus.events_published

    def test_ground_truth_recovered(self):
        _world, hook = run_honey()
        report = hook.evaluate()
        assert report.precision == 1.0
        assert report.recall > 0.95

    def test_stream_matches_batch(self):
        _world, hook = run_honey()
        flagged = hook.finalize()
        assert flagged == LockstepDetector(hook.config).flag_devices(hook.log)

    def test_gauges_published(self):
        world, hook = run_honey()
        hook.evaluate()
        gauges = world.obs.metrics.gauges()
        assert gauges["detection.precision"] == 1.0
        assert 0.0 < gauges["detection.recall"] <= 1.0

    def test_hook_does_not_perturb_the_experiment(self):
        # The detection adapter draws no RNG: a hooked run must deliver
        # exactly what a plain run delivers, and same-seed hooked runs
        # must agree with each other.
        obs_plain, obs_hooked = Observability(), Observability()
        world_plain = World(seed=11, obs=obs_plain)
        plain = HoneyAppExperiment(world_plain, installs_per_iip=120).run()
        world_hooked, hook = run_honey(seed=11, obs=obs_hooked)
        assert (sum(r.delivered for r in plain.campaigns)
                == hook.bus.events_published)
        plain_counters = obs_plain.metrics.counters()
        hooked_counters = obs_hooked.metrics.counters()
        assert all(hooked_counters[key] == value
                   for key, value in plain_counters.items())
        _world2, hook2 = run_honey(seed=11)
        assert hook.incentivized == hook2.incentivized
        assert hook.log.events() == hook2.log.events()


class TestWildSource:
    def test_bridge_produces_labelled_stream(self):
        _world, hook = run_wild()
        assert hook.bus.events_published > 0
        assert hook.incentivized
        report = hook.evaluate()
        assert report.precision > 0.9
        assert report.recall > 0.3

    def test_stream_matches_batch(self):
        _world, hook = run_wild()
        flagged = hook.finalize()
        assert flagged == LockstepDetector(hook.config).flag_devices(hook.log)

    def test_same_seed_runs_identical(self):
        _wa, hook_a = run_wild(seed=7)
        _wb, hook_b = run_wild(seed=7)
        assert hook_a.log.events() == hook_b.log.events()
        assert hook_a.finalize() == hook_b.finalize()
        assert hook_a.incentivized == hook_b.incentivized

    def test_sharded_run_byte_identical(self):
        obs_a, obs_b = Observability(), Observability()
        _wa, hook_a = run_wild(seed=7, shards=1, obs=obs_a)
        _wb, hook_b = run_wild(seed=7, shards=3, obs=obs_b)
        hook_a.evaluate()
        hook_b.evaluate()
        assert hook_a.log.events() == hook_b.log.events()
        assert hook_a.finalize() == hook_b.finalize()
        assert obs_a.metrics.snapshot() == obs_b.metrics.snapshot()

    @pytest.mark.chaos
    def test_chaos_run_same_seed_identical(self):
        from repro.net.chaos import ChaosScenario
        _wa, hook_a = run_wild(
            seed=7, chaos=ChaosScenario.profile("paper", seed=3))
        _wb, hook_b = run_wild(
            seed=7, chaos=ChaosScenario.profile("paper", seed=3))
        assert hook_a.log.events() == hook_b.log.events()
        assert hook_a.finalize() == hook_b.finalize()

    def test_detection_counters_recorded(self):
        world, hook = run_wild()
        flagged = hook.finalize()  # flush pending windows into the counters
        total = world.obs.metrics.counter_total
        assert total("detection.events_ingested") == hook.bus.events_published
        assert total("detection.clusters_flagged") == len(hook.online.clusters)
        assert total("detection.flagged_devices") == len(flagged)
