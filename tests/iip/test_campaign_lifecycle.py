"""Campaign state-machine edge cases and mediator semantics."""

import pytest

from repro.iip.campaigns import Campaign, CampaignState
from repro.iip.mediator import AttributionMediator
from repro.iip.offers import OfferCategory, tasks_for
from tests.iip.test_offers import make_offer


def make_campaign(installs=10, payout=0.06, **offer_overrides):
    offer = make_offer(payout_usd=payout, **offer_overrides)
    return Campaign(campaign_id="c1", developer_id="dev", offer=offer,
                    installs_purchased=installs,
                    advertiser_cost_per_install_usd=payout * 1.5)


class TestCampaignStateMachine:
    def test_initial_state_is_pending(self):
        campaign = make_campaign()
        assert campaign.state is CampaignState.PENDING
        assert not campaign.is_live_on(0)

    def test_cannot_deliver_before_launch(self):
        campaign = make_campaign()
        with pytest.raises(ValueError, match="cannot deliver"):
            campaign.record_delivery(1)

    def test_cannot_launch_twice(self):
        campaign = make_campaign()
        campaign.launch(0)
        with pytest.raises(ValueError, match="cannot launch"):
            campaign.launch(1)

    def test_delivery_exhausts(self):
        campaign = make_campaign(installs=3)
        campaign.launch(0)
        campaign.record_delivery(2)
        assert campaign.state is CampaignState.LIVE
        campaign.record_delivery(1)
        assert campaign.state is CampaignState.EXHAUSTED
        assert campaign.remaining == 0

    def test_cannot_overdeliver(self):
        campaign = make_campaign(installs=2)
        campaign.launch(0)
        with pytest.raises(ValueError, match="beyond purchased"):
            campaign.record_delivery(3)

    def test_negative_delivery_rejected(self):
        campaign = make_campaign()
        campaign.launch(0)
        with pytest.raises(ValueError):
            campaign.record_delivery(-1)

    def test_expiry_after_offer_end(self):
        campaign = make_campaign()
        campaign.launch(0)
        campaign.expire(26)  # offer ends day 25
        assert campaign.state is CampaignState.ENDED
        assert not campaign.is_live_on(26)

    def test_expire_is_noop_before_end(self):
        campaign = make_campaign()
        campaign.launch(0)
        campaign.expire(10)
        assert campaign.state is CampaignState.LIVE

    def test_budget(self):
        campaign = make_campaign(installs=100, payout=0.10)
        assert campaign.budget_usd == pytest.approx(100 * 0.15)

    def test_cost_below_payout_rejected(self):
        offer = make_offer(payout_usd=1.0)
        with pytest.raises(ValueError, match="below user payout"):
            Campaign(campaign_id="c", developer_id="d", offer=offer,
                     installs_purchased=1,
                     advertiser_cost_per_install_usd=0.5)

    def test_negative_installs_rejected(self):
        with pytest.raises(ValueError):
            make_campaign(installs=-1)


class TestMediator:
    def test_dedup_per_offer_device(self):
        mediator = AttributionMediator()
        first = mediator.report_completion("o1", "d1", 0, ("install",))
        duplicate = mediator.report_completion("o1", "d1", 1, ("install",))
        assert first is not None
        assert duplicate is None
        assert mediator.conversion_count("o1") == 1

    def test_same_device_different_offers_allowed(self):
        mediator = AttributionMediator()
        assert mediator.report_completion("o1", "d1", 0, ()) is not None
        assert mediator.report_completion("o2", "d1", 0, ()) is not None
        assert mediator.total_conversions == 2

    def test_certify(self):
        mediator = AttributionMediator()
        mediator.report_completion("o1", "d1", 0, ())
        assert mediator.certify("o1", "d1")
        assert not mediator.certify("o1", "d2")

    def test_conversions_for(self):
        mediator = AttributionMediator()
        mediator.report_completion("o1", "d1", 3, ("install", "open"))
        conversions = mediator.conversions_for("o1")
        assert len(conversions) == 1
        assert conversions[0].tasks_completed == ("install", "open")
        assert mediator.conversions_for("o2") == []


class TestPurchaseValidation:
    def test_zero_purchase_allowed(self):
        # A purchase can round down to nothing delivered; the campaign
        # object itself must tolerate that (the honey CLI exposes
        # --installs-per-iip 0 for dry runs).
        campaign = make_campaign(installs=0)
        campaign.launch(0)
        assert campaign.remaining == 0
        assert campaign.budget_usd == 0.0
