"""Property tests for offer-wall pagination and payout conversion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.offerwall import PAGE_SIZE, AffiliateWallConfig, OfferWallServer
from repro.iip.registry import build_platforms
from tests.conftest import make_client
from tests.iip.test_platform import make_campaign, register_and_fund


@given(st.floats(min_value=0.01, max_value=50.0),
       st.floats(min_value=1.0, max_value=100000.0),
       st.floats(min_value=0.05, max_value=1.0))
def test_points_conversion_round_trip_property(payout, rate, share):
    config = AffiliateWallConfig(affiliate_id="a", currency_name="pts",
                                 points_per_usd=rate, user_share=share)
    points = config.payout_to_points(payout)
    # Rounding to whole points loses at most half a point of value.
    assert abs(config.points_to_usd(points) - payout) <= 0.5 / rate / share + 1e-9


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=55))
def test_pagination_covers_every_offer_exactly_once(offer_count):
    rng = random.Random(offer_count)
    from repro.net.fabric import NetworkFabric
    from repro.net.tls import CertificateAuthority, TrustStore
    fabric = NetworkFabric()
    ca = CertificateAuthority("Root", rng)
    trust = TrustStore()
    trust.add_root(ca.self_certificate())
    ledger = MoneyLedger()
    platforms = build_platforms(ledger, AttributionMediator())
    fyber = platforms["Fyber"]
    register_and_fund(ledger, fyber, funds=100000.0)
    expected_ids = set()
    for _ in range(offer_count):
        campaign = make_campaign(fyber, installs=10, payout=0.10)
        fyber.launch(campaign.campaign_id, 0)
        expected_ids.add(campaign.offer.offer_id)
    wall = OfferWallServer(fabric, fyber, ca, rng, current_day=lambda: 0)
    wall.register_affiliate(AffiliateWallConfig(
        affiliate_id="app", currency_name="pts", points_per_usd=100,
        user_share=1.0))
    client = make_client(fabric, trust, rng)

    seen = []
    page = 0
    while True:
        payload = client.get(wall.hostname, "/api/v1/offers",
                             params={"affiliate_id": "app",
                                     "page": str(page)}).json()
        seen.extend(entry["offer_id"] for entry in payload["offers"])
        assert len(payload["offers"]) <= PAGE_SIZE
        if not payload["has_more"]:
            break
        page += 1
    assert len(seen) == len(set(seen)) == offer_count
    assert set(seen) == expected_ids
