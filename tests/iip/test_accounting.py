"""Money-ledger tests: wallets, transfers, the Figure-1 waterfall."""

import pytest

from repro.iip.accounting import MoneyLedger, Wallet


class TestWallet:
    def test_deposit_withdraw(self):
        wallet = Wallet(owner="dev")
        wallet.deposit(100)
        wallet.withdraw(40)
        assert wallet.balance_usd == pytest.approx(60)

    def test_overdraft_rejected(self):
        wallet = Wallet(owner="dev", balance_usd=5)
        with pytest.raises(ValueError, match="insufficient"):
            wallet.withdraw(10)

    def test_negative_amounts_rejected(self):
        wallet = Wallet(owner="dev")
        with pytest.raises(ValueError):
            wallet.deposit(-1)
        with pytest.raises(ValueError):
            wallet.withdraw(-1)


class TestMoneyLedger:
    def setup_method(self):
        self.ledger = MoneyLedger()

    def test_mint_and_transfer(self):
        self.ledger.mint("dev", 100, day=0)
        self.ledger.transfer("dev", "iip", 30, day=1, memo="deposit")
        assert self.ledger.wallet("dev").balance_usd == pytest.approx(70)
        assert self.ledger.wallet("iip").balance_usd == pytest.approx(30)

    def test_transfer_without_funds_fails(self):
        with pytest.raises(ValueError):
            self.ledger.transfer("dev", "iip", 1, day=0, memo="x")

    def test_entry_log(self):
        self.ledger.mint("dev", 10, day=0)
        self.ledger.transfer("dev", "iip", 10, day=0, memo="deposit")
        assert self.ledger.total_sent("dev") == pytest.approx(10)
        assert self.ledger.total_received("iip") == pytest.approx(10)

    def test_disbursement_waterfall_conserves_money(self):
        self.ledger.mint("dev", 100, day=0)
        disbursement = self.ledger.disburse(
            offer_id="o1", day=3, developer="dev", iip="Fyber",
            affiliate="cashapp", user="worker-1", mediator="appsflyer",
            advertiser_cost_usd=0.10, user_payout_usd=0.06,
            affiliate_share=0.5, mediator_fee_usd=0.03)
        # Split: margin 0.04 -> affiliate 0.02, iip 0.02; user 0.06; fee 0.03.
        assert disbursement.iip_cut_usd == pytest.approx(0.02)
        assert disbursement.affiliate_cut_usd == pytest.approx(0.02)
        assert disbursement.user_payout_usd == pytest.approx(0.06)
        balances = {
            owner: self.ledger.wallet(owner).balance_usd
            for owner in ("dev", "Fyber", "cashapp", "worker-1", "appsflyer")
        }
        assert balances["dev"] == pytest.approx(100 - 0.10 - 0.03)
        assert balances["Fyber"] == pytest.approx(0.02)
        assert balances["cashapp"] == pytest.approx(0.02)
        assert balances["worker-1"] == pytest.approx(0.06)
        assert balances["appsflyer"] == pytest.approx(0.03)
        assert sum(balances.values()) == pytest.approx(100)

    def test_user_payout_cannot_exceed_cost(self):
        self.ledger.mint("dev", 100, day=0)
        with pytest.raises(ValueError):
            self.ledger.disburse(
                offer_id="o1", day=0, developer="dev", iip="i",
                affiliate="a", user="u", mediator="m",
                advertiser_cost_usd=0.05, user_payout_usd=0.06,
                affiliate_share=0.5, mediator_fee_usd=0.0)

    def test_bad_affiliate_share_rejected(self):
        self.ledger.mint("dev", 1, day=0)
        with pytest.raises(ValueError):
            self.ledger.disburse(
                offer_id="o1", day=0, developer="dev", iip="i",
                affiliate="a", user="u", mediator="m",
                advertiser_cost_usd=0.10, user_payout_usd=0.06,
                affiliate_share=1.5, mediator_fee_usd=0.0)
