"""Platform tests: vetting, campaigns, completion, registry, wall server."""

import random

import pytest

from repro.iip.accounting import MoneyLedger
from repro.iip.campaigns import Campaign, CampaignState
from repro.iip.mediator import AttributionMediator
from repro.iip.offers import ActivityKind, OfferCategory, tasks_for
from repro.iip.offerwall import AffiliateWallConfig, OfferWallServer
from repro.iip.platform import DeveloperCredentials, VettingError
from repro.iip.registry import (
    IIP_CONFIGS,
    TABLE1_ROWS,
    UNVETTED_IIPS,
    VETTED_IIPS,
    build_platforms,
)
from tests.conftest import make_client


@pytest.fixture()
def ecosystem():
    ledger = MoneyLedger()
    mediator = AttributionMediator()
    platforms = build_platforms(ledger, mediator)
    return ledger, mediator, platforms


def register_and_fund(ledger, platform, developer_id="dev1", funds=5000.0):
    credentials = DeveloperCredentials(
        developer_id=developer_id, tax_id="TAX-1", bank_account="IBAN-1")
    platform.register_developer(credentials)
    ledger.mint(developer_id, funds, day=0)


def make_campaign(platform, developer_id="dev1", installs=500, payout=0.06,
                  category=OfferCategory.NO_ACTIVITY, kind=None, **kwargs):
    return platform.create_campaign(
        developer_id=developer_id, package="com.honey.memos",
        app_title="Voice Memos", description="Install and Launch",
        payout_usd=payout, category=category, activity_kind=kind,
        tasks=tasks_for(category, kind), installs=installs,
        start_day=0, end_day=25, **kwargs)


class TestRegistry:
    def test_table1_partition(self):
        assert set(VETTED_IIPS) == {"Fyber", "OfferToro", "AdscendMedia",
                                    "HangMyAds", "AdGem"}
        assert set(UNVETTED_IIPS) == {"ayeT-Studios", "RankApp"}

    def test_configs_match_table1(self):
        for name, vetted, home_url in TABLE1_ROWS:
            config = IIP_CONFIGS[name]
            assert config.vetted == vetted
            assert config.home_url == home_url

    def test_vetted_platforms_demand_documentation_and_deposits(self):
        for name in VETTED_IIPS:
            config = IIP_CONFIGS[name]
            assert config.requires_documentation
            assert config.min_deposit_usd >= 1000
        for name in UNVETTED_IIPS:
            config = IIP_CONFIGS[name]
            assert not config.requires_documentation
            assert config.min_deposit_usd <= 20

    def test_rankapp_is_slowest(self):
        speeds = {name: config.delivery_hours_typical
                  for name, config in IIP_CONFIGS.items()}
        assert max(speeds, key=speeds.get) == "RankApp"


class TestVetting:
    def test_vetted_platform_rejects_undocumented_developer(self, ecosystem):
        _, _, platforms = ecosystem
        with pytest.raises(VettingError, match="documentation"):
            platforms["Fyber"].register_developer(
                DeveloperCredentials(developer_id="anon"))

    def test_unvetted_platform_accepts_anyone(self, ecosystem):
        _, _, platforms = ecosystem
        platforms["RankApp"].register_developer(
            DeveloperCredentials(developer_id="anon"))
        assert platforms["RankApp"].is_registered("anon")

    def test_unregistered_developer_cannot_campaign(self, ecosystem):
        _, _, platforms = ecosystem
        with pytest.raises(VettingError, match="not registered"):
            make_campaign(platforms["Fyber"], developer_id="ghost")

    def test_minimum_deposit_enforced(self, ecosystem):
        ledger, _, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber, funds=100.0)  # below $2000 minimum
        with pytest.raises(VettingError, match="deposit"):
            make_campaign(fyber)

    def test_twenty_dollars_buys_entry_to_unvetted(self, ecosystem):
        ledger, _, platforms = ecosystem
        rankapp = platforms["RankApp"]
        rankapp.register_developer(DeveloperCredentials(developer_id="dev1"))
        ledger.mint("dev1", 60.0, day=0)
        campaign = make_campaign(rankapp, installs=500, payout=0.02)
        assert campaign.state is CampaignState.PENDING


class TestCampaignLifecycle:
    def test_launch_and_deliver(self, ecosystem):
        ledger, _, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        campaign = make_campaign(fyber, installs=3)
        fyber.launch(campaign.campaign_id, day=1)
        assert campaign.is_live_on(1)
        for index in range(3):
            disbursement = fyber.complete_offer(
                campaign.offer.offer_id, f"device-{index}", day=1,
                affiliate_id="cashapp", user_id=f"user-{index}",
                tasks_completed=("install", "open"))
            assert disbursement is not None
        assert campaign.state is CampaignState.EXHAUSTED
        assert campaign.remaining == 0

    def test_duplicate_device_not_paid_twice(self, ecosystem):
        ledger, mediator, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        campaign = make_campaign(fyber, installs=10)
        fyber.launch(campaign.campaign_id, day=0)
        first = fyber.complete_offer(campaign.offer.offer_id, "device-1", 0,
                                     "cashapp", "user-1", ("install",))
        second = fyber.complete_offer(campaign.offer.offer_id, "device-1", 0,
                                      "cashapp", "user-1", ("install",))
        assert first is not None
        assert second is None
        assert campaign.delivered == 1

    def test_completion_after_exhaustion_rejected(self, ecosystem):
        ledger, _, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        campaign = make_campaign(fyber, installs=1)
        fyber.launch(campaign.campaign_id, day=0)
        fyber.complete_offer(campaign.offer.offer_id, "d1", 0, "a", "u1", ())
        assert fyber.complete_offer(campaign.offer.offer_id, "d2", 0,
                                    "a", "u2", ()) is None

    def test_live_offers_respects_geo_targeting(self, ecosystem):
        ledger, _, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        campaign = make_campaign(fyber, target_countries=("US",))
        fyber.launch(campaign.campaign_id, day=0)
        assert fyber.live_offers(0, "US")
        assert fyber.live_offers(0, "DE") == []

    def test_campaign_expires_after_end_day(self, ecosystem):
        ledger, _, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        campaign = make_campaign(fyber)
        fyber.launch(campaign.campaign_id, day=0)
        assert fyber.live_offers(26, "US") == []
        assert campaign.state is CampaignState.ENDED

    def test_money_flows_through_all_parties(self, ecosystem):
        ledger, mediator, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        campaign = make_campaign(fyber, installs=2, payout=0.10)
        fyber.launch(campaign.campaign_id, day=0)
        fyber.complete_offer(campaign.offer.offer_id, "d1", 0,
                             "cashapp", "worker-9", ("install",))
        assert ledger.wallet("worker-9").balance_usd == pytest.approx(0.10)
        assert ledger.wallet("Fyber").balance_usd > 0
        # After forwarding the user's reward the affiliate keeps its cut.
        assert 0 < ledger.wallet("cashapp").balance_usd < 0.10

    def test_campaign_validation(self, ecosystem):
        ledger, _, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        with pytest.raises(ValueError):
            make_campaign(fyber, installs=-1)
        # Zero is allowed: a purchase can round to nothing delivered
        # (the honey CLI exposes --installs-per-iip 0 for dry runs).
        campaign = make_campaign(fyber, installs=0)
        assert campaign.remaining == 0


class TestOfferWallServer:
    def _build(self, fabric, root_ca, rng, ecosystem, day=0):
        ledger, _, platforms = ecosystem
        fyber = platforms["Fyber"]
        register_and_fund(ledger, fyber)
        campaign = make_campaign(fyber, installs=100, payout=0.50)
        fyber.launch(campaign.campaign_id, day=0)
        wall = OfferWallServer(fabric, fyber, root_ca, rng,
                               current_day=lambda: day)
        wall.register_affiliate(AffiliateWallConfig(
            affiliate_id="cashapp", currency_name="coins",
            points_per_usd=1000, user_share=0.6))
        return fyber, wall, campaign

    def test_wall_serves_offers_in_points(self, fabric, root_ca, trust_store,
                                          rng, ecosystem):
        _, wall, campaign = self._build(fabric, root_ca, rng, ecosystem)
        client = make_client(fabric, trust_store, rng)
        payload = client.get(wall.hostname, "/api/v1/offers",
                             params={"affiliate_id": "cashapp"}).json()
        assert payload["iip"] == "Fyber"
        offer = payload["offers"][0]
        assert offer["payout"] == {"points": 300, "currency": "coins"}
        assert offer["app"]["package"] == "com.honey.memos"
        assert "description" in offer

    def test_wall_requires_known_affiliate(self, fabric, root_ca, trust_store,
                                           rng, ecosystem):
        _, wall, _ = self._build(fabric, root_ca, rng, ecosystem)
        client = make_client(fabric, trust_store, rng)
        response = client.get(wall.hostname, "/api/v1/offers",
                              params={"affiliate_id": "stranger"})
        assert response.status == 403
        assert client.get(wall.hostname, "/api/v1/offers").status == 400

    def test_points_round_trip(self):
        config = AffiliateWallConfig(affiliate_id="a", currency_name="coins",
                                     points_per_usd=500, user_share=0.5)
        points = config.payout_to_points(0.40)
        assert config.points_to_usd(points) == pytest.approx(0.40, abs=0.01)

    def test_invalid_wall_config_rejected(self):
        with pytest.raises(ValueError):
            AffiliateWallConfig("a", "coins", points_per_usd=0, user_share=0.5)
        with pytest.raises(ValueError):
            AffiliateWallConfig("a", "coins", points_per_usd=10, user_share=0.0)
