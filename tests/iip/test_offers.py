"""Offer model and description-generator tests."""

import random

import pytest

from repro.iip.offers import (
    ActivityKind,
    Offer,
    OfferCategory,
    OfferDescriptionGenerator,
    TaskKind,
    TaskSpec,
    tasks_for,
)


def make_offer(**overrides):
    defaults = dict(
        offer_id="o1", iip_name="Fyber", package="com.a.b",
        app_title="App", play_store_url="https://play/x",
        description="Install and Launch", payout_usd=0.06,
        category=OfferCategory.NO_ACTIVITY, activity_kind=None,
        tasks=tasks_for(OfferCategory.NO_ACTIVITY, None),
        start_day=0, end_day=25,
    )
    defaults.update(overrides)
    return Offer(**defaults)


class TestOffer:
    def test_no_activity_offer_valid(self):
        offer = make_offer()
        assert offer.live_on(0)
        assert offer.live_on(25)
        assert not offer.live_on(26)
        assert offer.duration_days == 26

    def test_activity_needs_kind(self):
        with pytest.raises(ValueError):
            make_offer(category=OfferCategory.ACTIVITY, activity_kind=None)

    def test_no_activity_cannot_have_kind(self):
        with pytest.raises(ValueError):
            make_offer(activity_kind=ActivityKind.USAGE)

    def test_negative_payout_rejected(self):
        with pytest.raises(ValueError):
            make_offer(payout_usd=-0.01)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            make_offer(start_day=5, end_day=4)

    def test_worldwide_targeting(self):
        offer = make_offer(target_countries=None)
        assert offer.targets("US")
        assert offer.targets(None)

    def test_country_targeting(self):
        offer = make_offer(target_countries=("US", "GB"))
        assert offer.targets("US")
        assert not offer.targets("DE")
        assert not offer.targets(None)

    def test_effort_totals(self):
        usage = make_offer(category=OfferCategory.ACTIVITY,
                           activity_kind=ActivityKind.USAGE,
                           tasks=tasks_for(OfferCategory.ACTIVITY,
                                           ActivityKind.USAGE))
        no_activity = make_offer()
        assert usage.total_effort_minutes > no_activity.total_effort_minutes


class TestTasksFor:
    def test_no_activity_tasks(self):
        tasks = tasks_for(OfferCategory.NO_ACTIVITY, None)
        kinds = [task.kind for task in tasks]
        assert kinds == [TaskKind.INSTALL, TaskKind.OPEN]

    def test_registration_tasks(self):
        tasks = tasks_for(OfferCategory.ACTIVITY, ActivityKind.REGISTRATION)
        assert TaskKind.REGISTER in [task.kind for task in tasks]

    def test_purchase_tasks_carry_amount(self):
        tasks = tasks_for(OfferCategory.ACTIVITY, ActivityKind.PURCHASE,
                          purchase_usd=4.99)
        purchase = [task for task in tasks if task.kind is TaskKind.PURCHASE][0]
        assert purchase.amount == pytest.approx(4.99)

    def test_arbitrage_tasks_are_survey_heavy(self):
        tasks = tasks_for(OfferCategory.ACTIVITY, ActivityKind.USAGE,
                          is_arbitrage=True)
        assert TaskKind.COMPLETE_SURVEYS in [task.kind for task in tasks]

    def test_negative_effort_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(TaskKind.OPEN, effort_minutes=-1)


class TestDescriptionGenerator:
    def setup_method(self):
        self.generator = OfferDescriptionGenerator(random.Random(11))

    def test_no_activity_mentions_install(self):
        for _ in range(20):
            text = self.generator.describe(OfferCategory.NO_ACTIVITY, None, "X")
            assert "nstall" in text or "ownload" in text

    def test_registration_mentions_account_or_register(self):
        for _ in range(20):
            text = self.generator.describe(
                OfferCategory.ACTIVITY, ActivityKind.REGISTRATION, "X").lower()
            assert "regist" in text or "account" in text or "sign up" in text

    def test_purchase_mentions_money(self):
        for _ in range(20):
            text = self.generator.describe(
                OfferCategory.ACTIVITY, ActivityKind.PURCHASE, "X").lower()
            assert "purchase" in text or "buy" in text or "deposit" in text

    def test_arbitrage_descriptions_mention_earning_inside_app(self):
        for _ in range(20):
            text = self.generator.describe(
                OfferCategory.ACTIVITY, ActivityKind.USAGE, "X",
                is_arbitrage=True).lower()
            assert ("points" in text or "coins" in text or "surveys" in text
                    or "deals" in text)

    def test_titles_are_interpolated(self):
        texts = {self.generator.describe(OfferCategory.NO_ACTIVITY, None,
                                         "CashQuest") for _ in range(30)}
        assert any("CashQuest" in text for text in texts)

    def test_variety(self):
        texts = {self.generator.describe(OfferCategory.ACTIVITY,
                                         ActivityKind.USAGE, "X")
                 for _ in range(40)}
        assert len(texts) >= 5


class TestLocalizedDescriptions:
    def setup_method(self):
        self.generator = OfferDescriptionGenerator(random.Random(7))

    def test_every_language_and_type_renders(self):
        from repro.iip.offers import SUPPORTED_LANGUAGES
        for language in SUPPORTED_LANGUAGES:
            for category, kind in (
                    (OfferCategory.NO_ACTIVITY, None),
                    (OfferCategory.ACTIVITY, ActivityKind.REGISTRATION),
                    (OfferCategory.ACTIVITY, ActivityKind.PURCHASE),
                    (OfferCategory.ACTIVITY, ActivityKind.USAGE)):
                text = self.generator.describe(category, kind, "App",
                                               language=language)
                assert text
                assert "{" not in text  # all placeholders interpolated

    def test_spanish_registration(self):
        texts = {self.generator.describe(
            OfferCategory.ACTIVITY, ActivityKind.REGISTRATION, "X",
            language="es") for _ in range(10)}
        assert any("regístrate" in t or "cuenta" in t for t in texts)

    def test_russian_usage(self):
        texts = {self.generator.describe(
            OfferCategory.ACTIVITY, ActivityKind.USAGE, "X",
            language="ru") for _ in range(10)}
        assert any("Установи" in t for t in texts)

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            self.generator.describe(OfferCategory.NO_ACTIVITY, None, "X",
                                    language="xx")

    def test_arbitrage_always_english(self):
        text = self.generator.describe(
            OfferCategory.ACTIVITY, ActivityKind.USAGE, "X",
            is_arbitrage=True, language="ru")
        assert "Install" in text
