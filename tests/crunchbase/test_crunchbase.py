"""Funding database and developer-matcher tests."""

import pytest

from repro.crunchbase.database import (
    CrunchbaseDatabase,
    FundingRound,
    Organization,
)
from repro.crunchbase.matcher import (
    DeveloperMatcher,
    normalize_name,
    website_domain,
)
from repro.playstore.catalog import Developer


def org(org_id="org1", name="Dashlane Inc", website="https://dashlane.example",
        country="US", public=False):
    return Organization(org_id=org_id, name=name, website=website,
                        country=country, is_public_company=public)


def round_for(org_id="org1", day=100, round_type="Series D",
              amount=30_000_000.0):
    return FundingRound(org_id=org_id, day=day, round_type=round_type,
                        amount_usd=amount, investor_name="Sequoia Example",
                        investor_type="VC investor")


class TestDatabase:
    def test_add_and_snapshot(self):
        db = CrunchbaseDatabase()
        db.add_organization(org())
        db.add_round(round_for(day=50))
        db.add_round(round_for(day=150, round_type="Series E", amount=110e6))
        snapshot = db.snapshot(as_of_day=100)
        assert len(snapshot) == 1
        assert len(snapshot.rounds_for("org1")) == 1  # day-150 round excluded

    def test_raised_after(self):
        db = CrunchbaseDatabase()
        db.add_organization(org())
        db.add_round(round_for(day=50))
        db.add_round(round_for(day=90, round_type="Series E", amount=110e6))
        snapshot = db.snapshot(as_of_day=200)
        assert len(snapshot.raised_after("org1", day=40)) == 2
        assert len(snapshot.raised_after("org1", day=60)) == 1
        assert snapshot.raised_after("org1", day=90) == []

    def test_duplicate_org_rejected(self):
        db = CrunchbaseDatabase()
        db.add_organization(org())
        with pytest.raises(ValueError):
            db.add_organization(org())

    def test_round_for_unknown_org_rejected(self):
        with pytest.raises(KeyError):
            CrunchbaseDatabase().add_round(round_for())

    def test_round_validation(self):
        with pytest.raises(ValueError):
            round_for(round_type="Series Z")
        with pytest.raises(ValueError):
            round_for(amount=0)


class TestNormalization:
    def test_normalize_name_strips_suffixes(self):
        assert normalize_name("Dashlane Inc.") == "dashlane"
        assert normalize_name("Droom Technologies Pvt Ltd") == "droom"
        assert normalize_name("IGG Games") == "igg"

    def test_website_domain(self):
        assert website_domain("https://www.droom.example/about") == "droom.example"
        assert website_domain("http://igg.example") == "igg.example"
        assert website_domain(None) is None
        assert website_domain("") is None


class TestMatcher:
    def _matcher(self):
        db = CrunchbaseDatabase()
        db.add_organization(org("org1", "Dashlane Inc",
                                "https://dashlane.example"))
        db.add_organization(org("org2", "Droom Technologies", None, "IN"))
        return DeveloperMatcher(db.snapshot(200))

    def test_website_match_preferred(self):
        matcher = self._matcher()
        result = matcher.match("Completely Different Name",
                               "https://www.dashlane.example")
        assert result is not None
        assert result.matched_by == "website"
        assert result.organization.org_id == "org1"

    def test_name_fallback(self):
        matcher = self._matcher()
        result = matcher.match("Droom Technologies Ltd", None)
        assert result is not None
        assert result.matched_by == "name"
        assert result.organization.org_id == "org2"

    def test_unmatched_developer(self):
        matcher = self._matcher()
        assert matcher.match("Totally Unknown Studio", None) is None

    def test_developer_without_profile_information_unmatchable(self):
        # Unvetted-IIP developers often expose no website; name-only
        # matching then has to carry the weight, and garbage names fail.
        matcher = self._matcher()
        assert matcher.match("xX_dev_9921_Xx", None) is None

    def test_match_many(self):
        matcher = self._matcher()
        developers = [
            Developer(developer_id="d1", name="Dashlane", country="US",
                      website="https://dashlane.example"),
            Developer(developer_id="d2", name="Nobody", country="US"),
        ]
        matches = matcher.match_many(developers)
        assert set(matches) == {"d1"}
