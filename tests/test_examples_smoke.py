"""Every script under examples/ must run to completion.

API drift in the examples is invisible to unit tests (nothing imports
them), so tier-1 executes each one in a subprocess and requires a clean
exit.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_directory_is_populated():
    assert EXAMPLES, "examples/ should contain scripts"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_exits_cleanly(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        timeout=600)
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}")
