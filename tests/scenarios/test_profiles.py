"""Scenario profile parsing and the pack's composition rules."""

import pickle

import pytest

from repro.scenarios import NAIVE, ScenarioPack, parse_scenario


class TestParseScenario:
    def test_naive_is_the_noop(self):
        pack = parse_scenario("naive")
        assert pack == NAIVE
        assert not pack.adversarial
        assert pack.name == "naive"

    @pytest.mark.parametrize("token,flag", [
        ("evasive", "evasive"),
        ("fake-reviews", "fake_reviews"),
        ("download-fraud", "download_fraud"),
    ])
    def test_single_profiles(self, token, flag):
        pack = parse_scenario(token)
        assert getattr(pack, flag)
        assert pack.adversarial
        assert pack.name == token

    def test_profiles_compose(self):
        pack = parse_scenario("evasive,download-fraud")
        assert pack.evasive and pack.download_fraud
        assert not pack.fake_reviews
        assert pack.name == "evasive+download-fraud"

    def test_all_three(self):
        pack = parse_scenario("evasive,fake-reviews,download-fraud")
        assert pack.name == "evasive+fake-reviews+download-fraud"

    def test_whitespace_and_order_tolerated(self):
        assert (parse_scenario(" fake-reviews , evasive ")
                == parse_scenario("evasive,fake-reviews"))

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            parse_scenario("stealthy")

    def test_naive_cannot_combine(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            parse_scenario("naive,evasive")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_scenario(" , ")


class TestScenarioPack:
    def test_frozen(self):
        with pytest.raises(Exception):
            NAIVE.evasive = True

    def test_picklable(self):
        # The pack rides inside WildScenarioConfig into process-backend
        # worker replicas; a pack that cannot round-trip through pickle
        # would silently fall back to naive workers.
        pack = parse_scenario("evasive,fake-reviews,download-fraud")
        clone = pickle.loads(pickle.dumps(pack))
        assert clone == pack
        assert clone.evasion == pack.evasion
        assert clone.fake_review == pack.fake_review
        assert clone.fraud == pack.fraud
