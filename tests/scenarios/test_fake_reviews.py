"""Review-spam detector: synthetic feature checks plus an end-to-end run."""

from repro.core.wild_measurement import WildMeasurement, WildMeasurementConfig
from repro.playstore.reviews import AppReview, ReviewBook
from repro.scenarios import ReviewSpamDetector, parse_scenario
from repro.scenarios.fakereviews import ReviewCampaignPlan
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World


def organic_background(book, packages, days=30, rating=3):
    """One steady low-key review per app per window-ish cadence."""
    for package in packages:
        for day in range(0, days, 3):
            book.add(AppReview(reviewer_id=f"org-{package}-{day}",
                               package=package, day=day, hour=12.0,
                               rating=rating))


class TestBurstWindows:
    def test_flood_cannot_hide_behind_its_own_mean(self):
        # 60 paid reviews against 10 organic: a mean-based baseline
        # would be dragged up by the burst itself; the median window
        # count over the whole span stays at the organic level.
        book = ReviewBook()
        organic_background(book, ["app.flooded"])
        for i in range(60):
            book.add(AppReview(reviewer_id=f"paid-{i:03d}",
                               package="app.flooded", day=15, hour=10.0,
                               rating=5))
        detector = ReviewSpamDetector()
        bursts = detector._burst_windows(book)
        assert ("app.flooded", 15 // detector.config.burst_window_days) in bursts

    def test_steady_organic_stream_has_no_bursts(self):
        book = ReviewBook()
        organic_background(book, ["app.calm", "app.quiet"])
        assert ReviewSpamDetector()._burst_windows(book) == set()


class TestScores:
    def build_book(self):
        book = ReviewBook()
        organic_background(book, ["app.a", "app.b", "app.c", "app.d"])
        # One professional account reviews all four apps inside bursts.
        for day, package in enumerate(["app.a", "app.b", "app.c", "app.d"]):
            for i in range(12):
                reviewer = "pro-0001" if i == 0 else f"filler-{package}-{i}"
                book.add(AppReview(reviewer_id=reviewer, package=package,
                                   day=9 + day * 3, hour=9.0, rating=5))
        return book

    def test_overlapping_burst_reviewer_flagged(self):
        book = self.build_book()
        flagged = ReviewSpamDetector().flag_reviewers(book)
        assert "pro-0001" in flagged

    def test_one_app_organic_reviewer_not_flagged(self):
        book = self.build_book()
        flagged = ReviewSpamDetector().flag_reviewers(book)
        assert not any(reviewer.startswith("org-") for reviewer in flagged)

    def test_low_rating_inside_burst_not_punished(self):
        # An honest 1-star review that happens to land inside a paid
        # flood must not pick up deviation score: deviation is
        # positive-only.
        book = self.build_book()
        book.add(AppReview(reviewer_id="honest-low", package="app.a",
                           day=9, hour=9.5, rating=1))
        scores = ReviewSpamDetector().scores(book)
        config = ReviewSpamDetector().config
        # Only the single burst hit contributes; no deviation on top.
        assert scores["honest-low"] <= config.burst_weight + 1e-9


class TestCampaignPlan:
    def test_active_window(self):
        plan = ReviewCampaignPlan(package="app.x", start_day=4,
                                  duration_days=3, total_reviews=30)
        assert not plan.active_on(3)
        assert plan.active_on(4)
        assert plan.active_on(6)
        assert not plan.active_on(7)


class TestEndToEnd:
    def test_scenario_writes_reviews_and_detector_separates(self):
        pack = parse_scenario("fake-reviews")
        world = World(seed=7)
        scenario = WildScenario(world, WildScenarioConfig(
            scale=0.03, measurement_days=14, scenario=pack))
        scenario.build()
        WildMeasurement(world, scenario, WildMeasurementConfig(
            measurement_days=14, shards=1)).run()
        book = world.store.reviews
        paid = scenario.paid_reviewer_ids()
        assert len(book) > 0
        assert paid, "campaigns must leave paid ground truth"
        report = ReviewSpamDetector().evaluate(book, paid)
        assert report.precision >= 0.9
        assert report.recall >= 0.45
        assert report.false_positive_rate <= 0.05

    def test_naive_run_writes_no_reviews(self):
        world = World(seed=7)
        scenario = WildScenario(world, WildScenarioConfig(
            scale=0.03, measurement_days=8))
        scenario.build()
        WildMeasurement(world, scenario, WildMeasurementConfig(
            measurement_days=8, shards=1)).run()
        assert len(world.store.reviews) == 0
