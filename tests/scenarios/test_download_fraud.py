"""Download-fraud scenario: chart climb, detection, enforcement lag."""

from repro.core.wild_measurement import WildMeasurement, WildMeasurementConfig
from repro.scenarios import (
    DownloadFraudDetector,
    parse_scenario,
    rank_trajectory,
    render_fraud_report,
)
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World

DAYS = 14


def run_fraud(seed=7, scale=0.03, profile="download-fraud"):
    pack = parse_scenario(profile)
    world = World(seed=seed)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=scale, measurement_days=DAYS, scenario=pack))
    scenario.build()
    WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=1)).run()
    return world, scenario


class TestScenario:
    def test_boost_plans_target_small_apps(self):
        world, scenario = run_fraud()
        plans = scenario.boost_plans()
        assert plans, "the scenario must pick fraud apps"
        cap = scenario.config.scenario.fraud.max_initial_installs
        by_package = {app.package: app for app in scenario.advertised}
        for plan in plans:
            assert by_package[plan.package].initial_installs <= cap
            assert plan.start_day >= 1
            assert plan.end_day < DAYS

    def test_boosted_apps_climb_the_chart(self):
        world, scenario = run_fraud()
        for plan in scenario.boost_plans():
            trajectory = rank_trajectory(world.store, plan.package,
                                         plan.start_day, plan.end_day)
            ranks = [rank for _, rank in trajectory if rank is not None]
            assert ranks, f"{plan.package} never charted"
            assert min(ranks) <= 20

    def test_detector_separates_fraud_from_campaigns(self):
        # Naive incentivized campaigns spike installs too — the
        # engagement-deficit feature is what keeps them unflagged.
        world, scenario = run_fraud()
        packages = (scenario.advertised_packages()
                    + scenario.baseline_packages())
        report = DownloadFraudDetector().evaluate(
            world.store, packages, scenario.fraud_packages(), DAYS - 1)
        assert report.precision == 1.0
        assert report.recall == 1.0

    def test_enforcement_reacts_on_the_lag(self):
        # Takedowns are stochastic per campaign (weak retroactive
        # enforcement, as the paper observes), but at this seed at
        # least one fires — and any takedown must land at least
        # enforcement_lag_days after the spike ends and remove the
        # campaign's installs from the ledger.
        world, scenario = run_fraud()
        lag = scenario.config.scenario.fraud.enforcement_lag_days
        boost_ids = {plan.campaign_id for plan in scenario.boost_plans()}
        by_package = {plan.package: plan for plan in scenario.boost_plans()}
        takedowns = 0
        for plan in scenario.boost_plans():
            for action in world.store.enforcement.actions_for(plan.package):
                if action.campaign_id not in boost_ids:
                    continue
                takedowns += 1
                assert action.day >= by_package[plan.package].end_day + lag
                assert action.installs_removed > 0
        assert takedowns >= 1

    def test_report_renders_every_plan(self):
        world, scenario = run_fraud()
        packages = (scenario.advertised_packages()
                    + scenario.baseline_packages())
        report = DownloadFraudDetector().evaluate(
            world.store, packages, scenario.fraud_packages(), DAYS - 1)
        text = render_fraud_report(world.store, scenario.boost_plans(),
                                   report, DAYS - 1)
        for plan in scenario.boost_plans():
            assert plan.package in text
        assert "rank path" in text

    def test_naive_run_has_no_boosts(self):
        world = World(seed=7)
        scenario = WildScenario(world, WildScenarioConfig(
            scale=0.03, measurement_days=8))
        scenario.build()
        WildMeasurement(world, scenario, WildMeasurementConfig(
            measurement_days=8, shards=1)).run()
        assert scenario.boost_plans() == []
        assert scenario.fraud_packages() == []
