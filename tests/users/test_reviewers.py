"""Reviewer pools: reuse rates and replayable determinism."""

import random

import pytest

from repro.users.reviewers import ReviewerPool


class TestReviewerPool:
    def test_zero_reuse_always_mints(self):
        pool = ReviewerPool("burner", 0.0)
        rng = random.Random(1)
        drawn = [pool.draw(rng) for _ in range(20)]
        assert len(set(drawn)) == 20
        assert len(pool) == 20

    def test_full_reuse_sticks_to_the_first_member(self):
        pool = ReviewerPool("paid", 1.0)
        rng = random.Random(1)
        first = pool.draw(rng)
        assert all(pool.draw(rng) == first for _ in range(10))
        assert len(pool) == 1

    def test_ids_carry_prefix_and_sequence(self):
        pool = ReviewerPool("paid", 0.5)
        assert pool.fresh() == "paid-000001"
        assert pool.fresh() == "paid-000002"
        assert pool.members() == ["paid-000001", "paid-000002"]

    def test_replay_rebuilds_identical_pool(self):
        # Checkpoint resume and process-backend replicas rebuild pools
        # by replaying the same per-day draw sequences.
        def replay():
            pool = ReviewerPool("paid", 0.8)
            drawn = []
            for day in range(5):
                rng = random.Random(1000 + day)
                drawn.extend(pool.draw(rng) for _ in range(8))
            return pool.members(), drawn
        assert replay() == replay()

    def test_reuse_probability_validated(self):
        with pytest.raises(ValueError, match="reuse probability"):
            ReviewerPool("paid", 1.5)
