"""Worker behaviour and population-builder tests."""

import random

import pytest

from repro.iip.offers import ActivityKind, OfferCategory, tasks_for
from repro.net.ip import AsnDatabase
from repro.users.devices import DeviceFactory
from repro.users.population import IIPUserMix, PopulationBuilder
from repro.users.worker import Worker, WorkerBehavior
from tests.iip.test_offers import make_offer


@pytest.fixture()
def rng():
    return random.Random(31)


def make_worker(rng, behavior=None):
    factory = DeviceFactory(AsnDatabase(), rng)
    return Worker("w1", factory.real_phone("IN"),
                  behavior or WorkerBehavior())


class TestWorkerBehavior:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            WorkerBehavior(open_probability=1.1)
        with pytest.raises(ValueError):
            WorkerBehavior(engage_probability=-0.1)

    def test_diligent_worker_completes_no_activity_offer(self, rng):
        worker = make_worker(rng, WorkerBehavior(open_probability=1.0))
        result = worker.work_offer(make_offer(), day=0, rng=rng)
        assert result.installed
        assert result.opened
        assert result.completed
        assert "install" in result.tasks_completed
        assert "open" in result.tasks_completed
        assert worker.device.has_installed("com.a.b")

    def test_lazy_worker_never_opens_but_install_counts(self, rng):
        worker = make_worker(rng, WorkerBehavior(open_probability=0.0))
        result = worker.work_offer(make_offer(), day=0, rng=rng)
        assert result.installed
        assert not result.opened
        assert result.completed  # sloppy attribution pays bare installs
        assert result.session_seconds == 0.0

    def test_activity_offer_requires_open(self, rng):
        offer = make_offer(category=OfferCategory.ACTIVITY,
                           activity_kind=ActivityKind.REGISTRATION,
                           tasks=tasks_for(OfferCategory.ACTIVITY,
                                           ActivityKind.REGISTRATION))
        worker = make_worker(rng, WorkerBehavior(open_probability=0.0))
        result = worker.work_offer(offer, day=0, rng=rng)
        assert not result.completed
        assert not result.registered

    def test_registration_offer_registers(self, rng):
        offer = make_offer(category=OfferCategory.ACTIVITY,
                           activity_kind=ActivityKind.REGISTRATION,
                           tasks=tasks_for(OfferCategory.ACTIVITY,
                                           ActivityKind.REGISTRATION))
        worker = make_worker(rng, WorkerBehavior(
            open_probability=1.0, abandon_activity_probability=0.0))
        result = worker.work_offer(offer, day=0, rng=rng)
        assert result.completed
        assert result.registered

    def test_purchase_offer_generates_revenue(self, rng):
        offer = make_offer(category=OfferCategory.ACTIVITY,
                           activity_kind=ActivityKind.PURCHASE,
                           tasks=tasks_for(OfferCategory.ACTIVITY,
                                           ActivityKind.PURCHASE,
                                           purchase_usd=4.99))
        worker = make_worker(rng, WorkerBehavior(
            abandon_activity_probability=0.0))
        result = worker.work_offer(offer, day=0, rng=rng)
        assert result.purchase_usd == pytest.approx(4.99)

    def test_activity_offers_take_longer(self, rng):
        usage_offer = make_offer(category=OfferCategory.ACTIVITY,
                                 activity_kind=ActivityKind.USAGE,
                                 tasks=tasks_for(OfferCategory.ACTIVITY,
                                                 ActivityKind.USAGE))
        behavior = WorkerBehavior(abandon_activity_probability=0.0)
        quick = make_worker(rng, behavior).work_offer(make_offer(), 0, rng)
        slow = make_worker(rng, behavior).work_offer(usage_offer, 0, rng)
        assert slow.session_seconds > quick.session_seconds

    def test_engagement_rate_statistics(self, rng):
        behavior = WorkerBehavior(engage_probability=0.44)
        engaged = 0
        for index in range(500):
            worker = make_worker(rng, behavior)
            if worker.work_offer(make_offer(), 0, rng).engaged_beyond_task:
                engaged += 1
        assert 0.35 < engaged / 500 < 0.53

    def test_retention_is_rare(self, rng):
        behavior = WorkerBehavior(next_day_return_probability=0.005)
        returned = sum(
            make_worker(rng, behavior).work_offer(make_offer(), 0, rng).returned_next_day
            for _ in range(500))
        assert returned <= 10

    def test_points_credit(self, rng):
        worker = make_worker(rng)
        worker.credit_points(300)
        assert worker.points_earned == 300
        with pytest.raises(ValueError):
            worker.credit_points(-1)


class TestPopulationBuilder:
    def _builder(self, rng):
        return PopulationBuilder(AsnDatabase(), rng,
                                 affiliate_catalog=("eu.gcashapp",
                                                    "com.ayet.cashpirate",
                                                    "com.bigcash.app"))

    def test_population_size(self, rng):
        mix = IIPUserMix(iip_name="Fyber", behavior=WorkerBehavior())
        sample = self._builder(rng).build(mix, 100)
        assert len(sample) == 100

    def test_farm_quota(self, rng):
        mix = IIPUserMix(iip_name="ayeT-Studios", behavior=WorkerBehavior(),
                         farm_fraction=0.04, farm_size=20)
        sample = self._builder(rng).build(mix, 500)
        assert len(sample.farm_device_ids) == 20
        assert len(sample) == 500

    def test_emulator_fraction_approximate(self, rng):
        mix = IIPUserMix(iip_name="RankApp", behavior=WorkerBehavior(),
                         emulator_fraction=0.10)
        sample = self._builder(rng).build(mix, 1000)
        emulators = sum(worker.device.profile.is_emulator
                        for worker in sample.workers)
        assert 60 <= emulators <= 140

    def test_affiliate_app_prevalence(self, rng):
        mix = IIPUserMix(iip_name="RankApp", behavior=WorkerBehavior(),
                         affiliate_app_probability=0.98,
                         flagship_affiliate="eu.gcashapp",
                         flagship_share=0.37)
        sample = self._builder(rng).build(mix, 400)
        with_affiliate = sum(
            any(pkg in worker.device.installed_packages
                for pkg in ("eu.gcashapp", "com.ayet.cashpirate", "com.bigcash.app"))
            for worker in sample.workers)
        flagship = sum("eu.gcashapp" in worker.device.installed_packages
                       for worker in sample.workers)
        assert with_affiliate / 400 > 0.9
        assert 0.2 < flagship / 400 < 0.8

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            IIPUserMix(iip_name="X", behavior=WorkerBehavior(),
                       emulator_fraction=0.7, cloud_phone_fraction=0.5)

    def test_zero_count_rejected(self, rng):
        mix = IIPUserMix(iip_name="Fyber", behavior=WorkerBehavior())
        with pytest.raises(ValueError):
            self._builder(rng).build(mix, 0)
