"""Device model tests: builds, emulator detection, farms."""

import random

import pytest

from repro.net.ip import AsnDatabase, slash24
from repro.users.devices import (
    DeviceFactory,
    DeviceProfile,
    EMULATOR_BUILDS,
    REAL_BUILDS,
    looks_like_emulator,
)


@pytest.fixture()
def factory():
    return DeviceFactory(AsnDatabase(), random.Random(21))


class TestEmulatorDetection:
    def test_emulator_builds_flagged(self):
        for build in EMULATOR_BUILDS:
            assert looks_like_emulator(build)

    def test_real_builds_not_flagged(self):
        for build in REAL_BUILDS:
            assert not looks_like_emulator(build)

    def test_profile_property(self):
        emulated = DeviceProfile("d1", "genymotion/vbox86p", True, "x", "US")
        real = DeviceProfile("d2", "samsung/SM-G960F", False, "x", "US")
        assert emulated.is_emulator
        assert not real.is_emulator


class TestDeviceFactory:
    def test_real_phone_on_eyeball_asn(self, factory):
        db = AsnDatabase()
        device = factory.real_phone("US")
        record = db.lookup(device.address)
        assert record is not None
        assert record.kind == "eyeball"
        assert record.country == "US"
        assert not device.profile.is_emulator

    def test_emulator_on_datacenter_asn(self, factory):
        db = AsnDatabase()
        device = factory.emulator()
        record = db.lookup(device.address)
        assert record.kind == "datacenter"
        assert device.profile.is_emulator
        assert device.profile.is_rooted

    def test_cloud_phone_real_build_datacenter_network(self, factory):
        db = AsnDatabase()
        device = factory.cloud_phone()
        assert not device.profile.is_emulator
        assert db.lookup(device.address).kind == "datacenter"

    def test_unique_device_ids(self, factory):
        ids = {factory.real_phone("US").device_id for _ in range(50)}
        assert len(ids) == 50

    def test_country_without_eyeball_asn_falls_back(self, factory):
        device = factory.real_phone("ZZ")
        assert device.profile.country == "ZZ"

    def test_install_tracking(self, factory):
        device = factory.real_phone("US")
        device.install("com.whatsapp")
        assert device.has_installed("com.whatsapp")
        device.uninstall("com.whatsapp")
        assert not device.has_installed("com.whatsapp")


class TestDeviceFarm:
    def test_farm_shares_slash24_and_ssid(self, factory):
        farm = factory.farm("PH", size=20, rooted_fraction=0.9)
        assert len(farm) == 20
        blocks = {slash24(device.address) for device in farm.devices}
        assert len(blocks) == 1
        rooted = [device for device in farm.devices if device.profile.is_rooted]
        # ~18/20 rooted, all sharing the farm SSID.
        assert len(rooted) >= 15
        assert {device.profile.ssid for device in rooted} == {farm.ssid}

    def test_farm_devices_are_real_builds(self, factory):
        farm = factory.farm("ID", size=10)
        assert all(not device.profile.is_emulator for device in farm.devices)
