"""Cost-recovery economics tests."""

import pytest

from repro.analysis.classify import OfferClassifier
from repro.analysis.revenue import (
    RevenueModel,
    cost_recovery_analysis,
    offer_economics,
    summarize_cost_recovery,
)
from tests.analysis.test_tables import build_dataset


def classified(text):
    return OfferClassifier().classify(text)


def record_for(dataset, offer_id):
    for record in dataset.offers():
        if record.offer_id == offer_id:
            return record
    raise KeyError(offer_id)


class TestOfferEconomics:
    def setup_method(self):
        self.dataset = build_dataset()

    def test_no_activity_offer_barely_earns(self):
        record = record_for(self.dataset, "r1")  # $0.02 install-and-launch
        economics = offer_economics(record, classified(record.description),
                                    ad_libraries=2)
        assert economics.offer_kind == "no_activity"
        assert economics.cost_per_completion == pytest.approx(0.06, abs=0.01)
        assert economics.ad_revenue < 0.01
        assert economics.iap_revenue == 0.0

    def test_usage_offer_buys_ad_minutes(self):
        record = record_for(self.dataset, "f2")  # reach level 10, $0.50
        economics = offer_economics(record, classified(record.description),
                                    ad_libraries=8)
        assert economics.offer_kind == "usage"
        assert economics.ad_revenue > 0.05
        assert economics.ad_revenue < economics.cost_per_completion

    def test_purchase_offer_recoups_via_iap(self):
        record = record_for(self.dataset, "f3")  # $4.99 purchase, $2.98 payout
        economics = offer_economics(record, classified(record.description),
                                    ad_libraries=5)
        assert economics.offer_kind == "purchase"
        assert economics.iap_revenue == pytest.approx(4.99 * 0.7)
        # Even so, the payout+markup usually exceeds the IAP take.
        assert economics.recovery_ratio < 1.2

    def test_arbitrage_offer_earns_commission(self):
        record = record_for(self.dataset, "f4")
        economics = offer_economics(record, classified(record.description),
                                    ad_libraries=6)
        assert economics.offer_kind == "arbitrage"
        assert economics.arbitrage_revenue > 0
        assert economics.total_revenue == pytest.approx(
            economics.ad_revenue + economics.arbitrage_revenue)

    def test_no_ad_libraries_no_ad_revenue(self):
        record = record_for(self.dataset, "f2")
        economics = offer_economics(record, classified(record.description),
                                    ad_libraries=0)
        assert economics.ad_revenue == 0.0

    def test_more_ad_libraries_more_revenue(self):
        record = record_for(self.dataset, "f2")
        text = classified(record.description)
        few = offer_economics(record, text, ad_libraries=1)
        many = offer_economics(record, text, ad_libraries=5)
        assert many.ad_revenue > few.ad_revenue

    def test_model_validation(self):
        with pytest.raises(ValueError):
            RevenueModel(ecpm_usd=-1)
        with pytest.raises(ValueError):
            RevenueModel(store_iap_cut=1.0)


class TestCostRecoveryAnalysis:
    def test_analysis_covers_scanned_apps_only(self):
        dataset = build_dataset()
        scan = {"com.app.one": 6, "com.app.four": 1}
        economics = cost_recovery_analysis(dataset, scan)
        assert {e.package for e in economics} == {"com.app.one",
                                                  "com.app.four"}

    def test_summary_shape(self):
        dataset = build_dataset()
        scan = {p: 5 for p in dataset.unique_packages()}
        summary = summarize_cost_recovery(cost_recovery_analysis(dataset, scan))
        assert summary.offers_analysed == dataset.offer_count()
        assert 0.0 <= summary.recouping_fraction <= 1.0
        assert set(summary.recovery_by_kind) <= {
            "no_activity", "registration", "usage", "purchase", "arbitrage"}

    def test_paper_conclusion_direct_recovery_is_rare(self):
        # Under default economics, buying engagement does not pay for
        # itself through ads alone -- the paper's scepticism holds.
        dataset = build_dataset()
        scan = {p: 5 for p in dataset.unique_packages()}
        economics = [e for e in cost_recovery_analysis(dataset, scan)
                     if e.offer_kind in ("usage", "registration")]
        assert economics
        assert all(not e.recoups_cost for e in economics)

    def test_high_ecpm_changes_the_answer(self):
        # The conclusion is an economics statement, not hard-coded:
        # crank eCPM and usage offers start recouping.
        dataset = build_dataset()
        scan = {p: 5 for p in dataset.unique_packages()}
        rich = RevenueModel(ecpm_usd=60.0)
        economics = [e for e in cost_recovery_analysis(dataset, scan, rich)
                     if e.offer_kind == "usage"]
        assert any(e.recoups_cost for e in economics)

    def test_empty_summary(self):
        summary = summarize_cost_recovery([])
        assert summary.offers_analysed == 0
        assert summary.recouping_fraction == 0.0
