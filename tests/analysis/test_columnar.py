"""ColumnarFrame must agree with the per-record loops it replaced.

The analysis layer swapped per-record Python scans for single-pass
columnar index maps; these property tests drive both implementations
over seeded random record sets and require bit-identical answers —
including ordering (group keys in first-seen order, distinct sorted),
which the deterministic exports depend on.
"""

import random
from dataclasses import dataclass

import pytest

from repro.analysis.columnar import ColumnarFrame


@dataclass(frozen=True)
class Record:
    package: str
    country: str
    day: int
    payout: float


def make_records(seed: int, count: int = 300):
    rng = random.Random(seed)
    packages = [f"com.app{i}" for i in range(12)]
    countries = ["US", "IN", "BR", "DE"]
    return [
        Record(package=rng.choice(packages),
               country=rng.choice(countries),
               day=rng.randrange(0, 40),
               payout=round(rng.uniform(0.01, 2.0), 4))
        for _ in range(count)]


FIELDS = ("package", "country", "day", "payout")


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
class TestColumnarMatchesPerRecordLoops:
    def test_filter_eq_matches_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        got = frame.filter_eq(country="US")
        want = [r for r in records if r.country == "US"]
        assert got.column("package") == [r.package for r in want]
        assert got.column("day") == [r.day for r in want]

    def test_stacked_filters_match_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        target = records[0]
        got = frame.filter_eq(package=target.package, country=target.country)
        want = [r for r in records if r.package == target.package
                and r.country == target.country]
        assert got.column("payout") == [r.payout for r in want]

    def test_group_indexes_match_loop_with_first_seen_order(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        want = {}
        for i, record in enumerate(records):
            want.setdefault(record.package, []).append(i)
        got = frame.group_indexes("package")
        assert got == want
        assert list(got) == list(want)  # first-seen key order, exactly

    def test_group_by_preserves_row_order_within_groups(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        for package, group in frame.group_by("package").items():
            want = [r for r in records if r.package == package]
            assert group.column("day") == [r.day for r in want]
            assert group.column("payout") == [r.payout for r in want]

    def test_group_min_max_matches_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        want = {}
        for record in records:
            low, high = want.get(record.package,
                                 (record.day, record.day))
            want[record.package] = (min(low, record.day),
                                    max(high, record.day))
        assert frame.group_min_max("package", "day", "day") == want

    def test_distinct_matches_sorted_set(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        assert frame.distinct("country") == sorted(
            {r.country for r in records})

    def test_filter_by_predicate_matches_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        got = frame.filter_by("day", lambda day: day >= 20)
        want = [r for r in records if r.day >= 20]
        assert list(got.rows("package", "day")) == [
            (r.package, r.day) for r in want]


class TestFrameShape:
    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            ColumnarFrame({"a": [1, 2], "b": [1]})

    def test_empty_frame(self):
        frame = ColumnarFrame({"a": [], "b": []})
        assert len(frame) == 0
        assert frame.distinct("a") == []
        assert frame.group_indexes("a") == {}

    def test_select_reorders(self):
        frame = ColumnarFrame({"v": [10, 20, 30]})
        assert frame.select([2, 0]).column("v") == [30, 10]
