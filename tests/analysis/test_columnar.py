"""ColumnarFrame must agree with the per-record loops it replaced.

The analysis layer swapped per-record Python scans for single-pass
columnar index maps; these property tests drive both implementations
over seeded random record sets and require bit-identical answers —
including ordering (group keys in first-seen order, distinct sorted),
which the deterministic exports depend on.
"""

import random
from dataclasses import dataclass

import pytest

from repro.analysis.columnar import ColumnarFrame


@dataclass(frozen=True)
class Record:
    package: str
    country: str
    day: int
    payout: float


def make_records(seed: int, count: int = 300):
    rng = random.Random(seed)
    packages = [f"com.app{i}" for i in range(12)]
    countries = ["US", "IN", "BR", "DE"]
    return [
        Record(package=rng.choice(packages),
               country=rng.choice(countries),
               day=rng.randrange(0, 40),
               payout=round(rng.uniform(0.01, 2.0), 4))
        for _ in range(count)]


FIELDS = ("package", "country", "day", "payout")


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
class TestColumnarMatchesPerRecordLoops:
    def test_filter_eq_matches_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        got = frame.filter_eq(country="US")
        want = [r for r in records if r.country == "US"]
        assert got.column("package") == [r.package for r in want]
        assert got.column("day") == [r.day for r in want]

    def test_stacked_filters_match_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        target = records[0]
        got = frame.filter_eq(package=target.package, country=target.country)
        want = [r for r in records if r.package == target.package
                and r.country == target.country]
        assert got.column("payout") == [r.payout for r in want]

    def test_group_indexes_match_loop_with_first_seen_order(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        want = {}
        for i, record in enumerate(records):
            want.setdefault(record.package, []).append(i)
        got = frame.group_indexes("package")
        assert got == want
        assert list(got) == list(want)  # first-seen key order, exactly

    def test_group_by_preserves_row_order_within_groups(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        for package, group in frame.group_by("package").items():
            want = [r for r in records if r.package == package]
            assert group.column("day") == [r.day for r in want]
            assert group.column("payout") == [r.payout for r in want]

    def test_group_min_max_matches_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        want = {}
        for record in records:
            low, high = want.get(record.package,
                                 (record.day, record.day))
            want[record.package] = (min(low, record.day),
                                    max(high, record.day))
        assert frame.group_min_max("package", "day", "day") == want

    def test_distinct_matches_sorted_set(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        assert frame.distinct("country") == sorted(
            {r.country for r in records})

    def test_filter_by_predicate_matches_loop(self, seed):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        got = frame.filter_by("day", lambda day: day >= 20)
        want = [r for r in records if r.day >= 20]
        assert list(got.rows("package", "day")) == [
            (r.package, r.day) for r in want]


class TestFrameShape:
    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            ColumnarFrame({"a": [1, 2], "b": [1]})

    def test_empty_frame(self):
        frame = ColumnarFrame({"a": [], "b": []})
        assert len(frame) == 0
        assert frame.distinct("a") == []
        assert frame.group_indexes("a") == {}

    def test_select_reorders(self):
        frame = ColumnarFrame({"v": [10, 20, 30]})
        assert frame.select([2, 0]).column("v") == [30, 10]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("chunk_size", [1, 7, 64, 1000])
class TestChunkedIteration:
    """Chunked traversal must be invisible to every consumer: the
    streamed analysis folds (repro.analysis.streams) rebuild group
    maps across chunk boundaries and rely on these properties."""

    def test_chunks_cover_rows_in_order(self, seed, chunk_size):
        records = make_records(seed)
        frame = ColumnarFrame.from_records(records, FIELDS)
        rebuilt = [row for chunk in frame.iter_chunks(chunk_size)
                   for row in chunk.rows(*FIELDS)]
        assert rebuilt == list(frame.rows(*FIELDS))

    def test_chunk_sizes_are_bounded(self, seed, chunk_size):
        frame = ColumnarFrame.from_records(make_records(seed), FIELDS)
        sizes = [len(chunk) for chunk in frame.iter_chunks(chunk_size)]
        assert sum(sizes) == len(frame)
        assert all(size <= chunk_size for size in sizes)
        assert all(size == chunk_size for size in sizes[:-1])

    def test_concat_of_chunks_is_identity(self, seed, chunk_size):
        frame = ColumnarFrame.from_records(make_records(seed), FIELDS)
        rebuilt = ColumnarFrame.concat(
            frame.iter_chunks(chunk_size), FIELDS)
        for field in FIELDS:
            assert rebuilt.column(field) == frame.column(field)

    def test_group_order_stable_across_chunk_boundaries(self, seed,
                                                        chunk_size):
        """First-seen group order folded chunk-by-chunk must equal the
        whole-frame order, even when a group straddles a boundary."""
        frame = ColumnarFrame.from_records(make_records(seed), FIELDS)
        folded = {}
        for chunk in frame.iter_chunks(chunk_size):
            for key, indexes in chunk.group_indexes("package").items():
                folded.setdefault(key, 0)
                folded[key] += len(indexes)
        whole = frame.group_indexes("package")
        assert list(folded) == list(whole)
        assert {k: len(v) for k, v in whole.items()} == folded

    def test_extend_matches_concat(self, seed, chunk_size):
        frame = ColumnarFrame.from_records(make_records(seed), FIELDS)
        grown = ColumnarFrame({field: [] for field in FIELDS})
        for chunk in frame.iter_chunks(chunk_size):
            grown.extend(chunk)
        assert list(grown.rows(*FIELDS)) == list(frame.rows(*FIELDS))


class TestChunkEdgeCases:
    def test_empty_frame_yields_no_chunks(self):
        frame = ColumnarFrame({"a": [], "b": []})
        assert list(frame.iter_chunks(8)) == []

    def test_nonpositive_size_yields_whole_frame(self):
        frame = ColumnarFrame({"a": [1, 2, 3]})
        chunks = list(frame.iter_chunks(0))
        assert len(chunks) == 1
        assert chunks[0] is frame
        assert [c.column("a") for c in frame.iter_chunks(-1)] == [[1, 2, 3]]

    def test_concat_of_nothing_is_empty(self):
        frame = ColumnarFrame.concat([], ("a", "b"))
        assert len(frame) == 0
        assert frame.column("a") == []

    def test_concat_skips_empty_chunks(self):
        empty = ColumnarFrame({"a": []})
        full = ColumnarFrame({"a": [1, 2]})
        frame = ColumnarFrame.concat([empty, full, empty], ("a",))
        assert frame.column("a") == [1, 2]

    def test_extend_rejects_mismatched_fields(self):
        frame = ColumnarFrame({"a": [1]})
        with pytest.raises(ValueError):
            frame.extend(ColumnarFrame({"b": [2]}))
