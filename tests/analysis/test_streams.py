"""SpillableLog and chunk-fold contract tests.

The streaming pipeline's byte-identity rests on two properties proved
here in isolation: a spilled log replays exactly the records appended
(and restores exactly to a checkpointed offset, WAL-truncation style),
and every chunk fold equals the same reduction over the materialised
frame regardless of how the rows are split into chunks.
"""

import json
import random

import pytest

from repro.analysis.columnar import ColumnarFrame
from repro.analysis.streams import (
    GroupFold,
    SpillableLog,
    SpillError,
    fold_distinct,
    fold_filtered_distinct,
    fold_group_min_max,
)


def make_log(spill_path=None):
    return SpillableLog(
        encode=lambda pair: {"k": pair[0], "v": pair[1]},
        decode=lambda data: (data["k"], data["v"]),
        spill_path=str(spill_path) if spill_path is not None else None)


RECORDS = [("alpha", 1), ("beta", 2), ("alpha", 3), ("gamma", 4)]


class TestSpillableLogModes:
    def test_memory_mode_round_trip(self):
        log = make_log()
        log.extend(RECORDS)
        assert list(log) == RECORDS
        assert len(log) == 4

    def test_memory_state_dict_is_the_legacy_encoded_list(self):
        """Materialised checkpoints must not change shape: old
        checkpoints load, new ones stay loadable by old code."""
        log = make_log()
        log.extend(RECORDS)
        assert log.state_dict() == [
            {"k": k, "v": v} for k, v in RECORDS]

    def test_spill_mode_round_trip(self, tmp_path):
        log = make_log(tmp_path / "log.jsonl")
        log.extend(RECORDS)
        assert list(log) == RECORDS
        assert len(log) == 4
        # Nothing resident: the records live on disk as JSONL.
        lines = (tmp_path / "log.jsonl").read_text().splitlines()
        assert [json.loads(line)["k"] for line in lines] == [
            k for k, _ in RECORDS]

    def test_fresh_spill_run_truncates_stale_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"k": "stale", "v": 0}\n')
        log = make_log(path)
        log.append(("fresh", 1))
        assert list(log) == [("fresh", 1)]

    def test_iteration_is_repeatable_and_interleaves_appends(self,
                                                             tmp_path):
        log = make_log(tmp_path / "log.jsonl")
        log.extend(RECORDS[:2])
        assert list(log) == RECORDS[:2]
        log.extend(RECORDS[2:])
        assert list(log) == RECORDS
        assert list(log) == RECORDS


class TestSpillableLogRestore:
    def test_memory_checkpoint_restores_in_memory(self):
        log = make_log()
        log.extend(RECORDS)
        state = log.state_dict()
        fresh = make_log()
        fresh.load_state(state)
        assert list(fresh) == RECORDS

    def test_spill_checkpoint_truncates_post_checkpoint_appends(
            self, tmp_path):
        """The WAL contract: records appended after the checkpoint are
        phantom work a resumed run will redo — truncate them away."""
        path = tmp_path / "log.jsonl"
        log = make_log(path)
        log.extend(RECORDS[:2])
        state = log.state_dict()
        log.extend(RECORDS[2:])  # lost to the "crash"
        resumed = make_log(path)
        resumed.load_state(state)
        assert len(resumed) == 2
        assert list(resumed) == RECORDS[:2]
        # The resumed run re-appends and the replay stays exact.
        resumed.extend(RECORDS[2:])
        assert list(resumed) == RECORDS

    def test_memory_checkpoint_resumed_in_spill_mode_respills(
            self, tmp_path):
        log = make_log()
        log.extend(RECORDS)
        resumed = make_log(tmp_path / "log.jsonl")
        resumed.load_state(log.state_dict())
        assert list(resumed) == RECORDS

    def test_spill_checkpoint_resumed_in_memory_mode_is_an_error(
            self, tmp_path):
        log = make_log(tmp_path / "log.jsonl")
        log.extend(RECORDS)
        with pytest.raises(SpillError, match="--batch-devices"):
            make_log().load_state(log.state_dict())

    def test_missing_spill_file_is_an_error_unless_empty(self, tmp_path):
        log = make_log(tmp_path / "gone.jsonl")
        log.extend(RECORDS)
        state = log.state_dict()
        (tmp_path / "gone.jsonl").unlink()
        resumed = make_log(tmp_path / "gone.jsonl")
        with pytest.raises(SpillError, match="missing"):
            resumed.load_state(state)
        # An empty checkpoint needs no file at all.
        empty = make_log(tmp_path / "never.jsonl")
        empty.load_state({"spill": {"count": 0, "offset": 0}})
        assert len(empty) == 0

    def test_short_spill_file_is_an_error(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = make_log(path)
        log.extend(RECORDS)
        state = log.state_dict()
        path.write_text('{"k": "alpha", "v": 1}\n')
        with pytest.raises(SpillError, match="shorter"):
            make_log(path).load_state(state)


def make_frame(seed, count=240):
    rng = random.Random(seed)
    packages = [f"com.app{i}" for i in range(10)]
    iips = ["IIP-A", "IIP-B", "IIP-C"]
    records = [
        {"package": rng.choice(packages),
         "iip_name": rng.choice(iips),
         "first_seen_day": rng.randrange(0, 30),
         "last_seen_day": rng.randrange(30, 60),
         "payout_usd": round(rng.uniform(0.01, 2.0), 4)}
        for _ in range(count)]
    fields = ("package", "iip_name", "first_seen_day", "last_seen_day",
              "payout_usd")
    return ColumnarFrame.from_records(
        [type("R", (), record)() for record in records], fields)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("chunk_size", [1, 7, 100, 1000])
class TestFoldsEqualMaterialised:
    """Every fold over chunks must equal the one-pass reduction over
    the whole frame — the property the streamed exports' byte-identity
    reduces to."""

    def test_fold_distinct(self, seed, chunk_size):
        frame = make_frame(seed)
        assert (fold_distinct(frame.iter_chunks(chunk_size), "package")
                == frame.distinct("package"))

    def test_fold_filtered_distinct(self, seed, chunk_size):
        frame = make_frame(seed)
        assert (fold_filtered_distinct(
                    frame.iter_chunks(chunk_size), "package",
                    iip_name="IIP-B")
                == frame.filter_eq(iip_name="IIP-B").distinct("package"))

    def test_fold_group_min_max(self, seed, chunk_size):
        frame = make_frame(seed)
        folded = fold_group_min_max(
            frame.iter_chunks(chunk_size), "package",
            "first_seen_day", "last_seen_day")
        whole = frame.group_min_max(
            "package", "first_seen_day", "last_seen_day")
        assert folded == whole
        assert list(folded) == list(whole)  # first-seen key order

    def test_group_fold(self, seed, chunk_size):
        frame = make_frame(seed)
        folded = GroupFold("iip_name", "payout_usd", "package").fold(
            frame.iter_chunks(chunk_size)).groups
        whole = {}
        for iip, indexes in frame.group_indexes("iip_name").items():
            whole[iip] = {
                "payout_usd": [frame.column("payout_usd")[i]
                               for i in indexes],
                "package": [frame.column("package")[i] for i in indexes],
            }
        assert folded == whole
        assert list(folded) == list(whole)


class TestFoldEdgeCases:
    def test_folds_over_no_chunks(self):
        assert fold_distinct([], "package") == []
        assert fold_group_min_max([], "package", "a", "b") == {}
        assert GroupFold("package", "payout_usd").fold([]).groups == {}

    def test_folds_skip_empty_chunks(self):
        frame = make_frame(3, count=20)
        empty = ColumnarFrame({field: [] for field in frame.fields})
        chunks = [empty, frame, empty]
        assert fold_distinct(chunks, "package") == frame.distinct(
            "package")
