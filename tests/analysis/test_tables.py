"""Table/figure computation tests on hand-built datasets."""

import pytest

from repro.affiliates.app import AffiliateAppSpec
from repro.analysis.appstore_impact import (
    case_study_timeline,
    enforcement_decreases,
    install_decrease_flag,
    install_increase_comparison,
    install_increase_flag,
    top_chart_comparison,
)
from repro.analysis.characterize import (
    install_count_histogram,
    iip_summary_table,
    offer_type_table,
)
from repro.analysis.funding import (
    funded_offer_breakdown,
    funded_packages,
    funding_comparison,
)
from repro.analysis.monetization import (
    ad_library_distribution,
    arbitrage_stats,
    split_packages_by_offer_type,
)
from repro.crunchbase.database import (
    CrunchbaseDatabase,
    FundingRound,
    Organization,
)
from repro.monitor.crawler import ChartAppearance, CrawlArchive, ProfileSnapshot
from repro.monitor.dataset import ObservedOffer, OfferDataset

SPEC = AffiliateAppSpec(
    package="com.aff.app", title="Aff", installs_display="1M+",
    integrated_iips=("Fyber", "RankApp"), currency_name="coins",
    points_per_usd=100.0)


def obs(iip, offer_id, package, description, payout_usd, day=0):
    return ObservedOffer(
        iip_name=iip, offer_id=offer_id, package=package,
        app_title=package.split(".")[-1], play_store_url=f"https://play/{package}",
        description=description, payout_points=int(round(payout_usd * 100)),
        currency="coins", affiliate_package="com.aff.app", country="US",
        day=day)


def build_dataset():
    dataset = OfferDataset({"com.aff.app": SPEC})
    dataset.ingest_all([
        obs("Fyber", "f1", "com.app.one", "Install and Register", 0.34, day=2),
        obs("Fyber", "f2", "com.app.one", "Install and Reach Level 10", 0.50, day=6),
        obs("Fyber", "f3", "com.app.two", "Install and make a $4.99 in-app purchase", 2.98, day=4),
        obs("Fyber", "f4", "com.app.three",
            "Install and reach 850 points by completing surveys", 0.67, day=4),
        obs("RankApp", "r1", "com.app.four", "Install and Launch", 0.02, day=2),
        obs("RankApp", "r2", "com.app.five", "Install and open the app", 0.10, day=6),
    ])
    return dataset


def profile(package, day, installs, developer="dev1", name="Dev One",
            website=None, country="US", genre="Tools", release_day=0):
    return ProfileSnapshot(
        package=package, day=day, installs_floor=installs, genre=genre,
        release_day=release_day, developer_id=developer,
        developer_name=name, developer_country=country,
        developer_website=website, is_game=genre in ("Puzzle", "Casual"))


class TestTable3:
    def test_offer_type_rows(self):
        rows = {row.label: row for row in offer_type_table(build_dataset())}
        assert rows["No activity"].offer_count == 2
        assert rows["Activity"].offer_count == 4
        assert rows["No activity"].fraction_of_all == pytest.approx(2 / 6)
        assert rows["Activity (Purchase)"].average_payout_usd == pytest.approx(2.98)
        assert rows["Activity (Registration)"].average_payout_usd == pytest.approx(0.34)
        # Usage includes the arbitrage offer.
        assert rows["Activity (Usage)"].offer_count == 2

    def test_empty_dataset(self):
        assert offer_type_table(OfferDataset({})) == []


class TestTable4:
    def test_summary_rows(self):
        dataset = build_dataset()
        archive = CrawlArchive()
        archive.add_profile(profile("com.app.one", 2, 1_000_000,
                                    developer="d1", country="US",
                                    genre="Music & Audio", release_day=0))
        archive.add_profile(profile("com.app.two", 4, 500_000,
                                    developer="d2", country="FR",
                                    genre="Casual", release_day=1))
        archive.add_profile(profile("com.app.three", 4, 1_000_000,
                                    developer="d1", country="US",
                                    genre="Tools", release_day=2))
        archive.add_profile(profile("com.app.four", 2, 100,
                                    developer="d3", country="VN",
                                    genre="Tools", release_day=1))
        archive.add_profile(profile("com.app.five", 6, 1_000,
                                    developer="d4", country="IN",
                                    genre="Puzzle", release_day=3))
        rows = {row.iip_name: row
                for row in iip_summary_table(dataset, archive, ("Fyber",))}
        fyber = rows["Fyber"]
        assert fyber.iip_type == "Vetted"
        assert fyber.app_count == 3
        assert fyber.developer_count == 2
        assert fyber.country_count == 2
        assert fyber.genre_count == 3
        assert fyber.activity_fraction == 1.0
        assert fyber.median_install_count == 1_000_000
        assert fyber.median_offer_payout_usd == pytest.approx(0.585)
        rank = rows["RankApp"]
        assert rank.iip_type == "Unvetted"
        assert rank.no_activity_fraction == 1.0
        assert rank.median_install_count == pytest.approx(550)
        # com.app.four campaign starts day 2, released day 1 -> age 1.
        assert rank.median_app_age_days == pytest.approx(2.0)


class TestFigure4:
    def test_histogram_bins(self):
        values = [500, 5_000, 50_000, 5_000_000, 2_000_000_000]
        histogram = dict(install_count_histogram(values))
        assert histogram["0-1k"] == 1
        assert histogram["1k-10k"] == 1
        assert histogram["10k-100k"] == 1
        assert histogram["1M-10M"] == 1
        assert histogram["1000M+"] == 1
        assert histogram["100M-1000M"] == 0


def build_impact_archive():
    """Crawl series engineered for the Table 5/6 tests."""
    archive = CrawlArchive()
    # Advertised app that grows within its window (2..6).
    for day, installs in ((2, 100), (4, 500), (6, 1000)):
        archive.add_profile(profile("com.app.one", day, installs))
    # Advertised app that stays flat.
    for day in (2, 4, 6):
        archive.add_profile(profile("com.app.four", day, 100))
    # Baseline apps: one grows, one flat, one crawled once (excluded).
    for day, installs in ((0, 1000), (24, 5000)):
        archive.add_profile(profile("com.base.grow", day, installs))
    for day in (0, 24):
        archive.add_profile(profile("com.base.flat", day, 10_000))
    archive.add_profile(profile("com.base.once", 0, 10))
    for day in (0, 2, 4, 6, 24):
        archive.note_crawl_day(day)
    # Charts: com.app.one charts on day 4 (inside window, not at start).
    archive.add_chart("top_free", 0, [])
    archive.add_chart("top_free", 2, [
        ChartAppearance("com.already.charting", "top_free", 2, 1, 1.0)])
    archive.add_chart("top_free", 4, [
        ChartAppearance("com.app.one", "top_free", 4, 3, 0.99)])
    archive.add_chart("top_free", 6, [])
    archive.add_chart("top_free", 24, [])
    return archive


class TestTable5:
    def test_increase_flags(self):
        archive = build_impact_archive()
        assert install_increase_flag(archive, "com.app.one", (2, 6)) is True
        assert install_increase_flag(archive, "com.app.four", (2, 6)) is False
        assert install_increase_flag(archive, "com.base.once", (0, 24)) is None

    def test_comparison_counts(self):
        archive = build_impact_archive()
        dataset = build_dataset()
        comparison = install_increase_comparison(
            archive, dataset,
            vetted_packages=["com.app.one"],
            unvetted_packages=["com.app.four"],
            baseline_packages=["com.base.grow", "com.base.flat", "com.base.once"],
            baseline_window=(0, 24))
        assert comparison.vetted.positive == 1
        assert comparison.unvetted.positive == 0
        assert comparison.baseline.total == 2  # once-crawled app excluded
        assert comparison.baseline.positive == 1
        assert comparison.vetted_vs_baseline.dof == 1


class TestTable6:
    def test_chart_comparison(self):
        archive = build_impact_archive()
        dataset = build_dataset()
        comparison = top_chart_comparison(
            archive, dataset,
            vetted_packages=["com.app.one"],
            unvetted_packages=["com.app.four"],
            baseline_packages=["com.base.grow", "com.base.flat"],
            baseline_window=(0, 24))
        assert comparison.vetted.positive == 1
        assert comparison.unvetted.positive == 0
        assert comparison.baseline.positive == 0

    def test_already_charting_app_excluded(self):
        archive = build_impact_archive()
        dataset = build_dataset()
        comparison = top_chart_comparison(
            archive, dataset,
            vetted_packages=["com.app.one"],
            unvetted_packages=["com.app.four"],
            baseline_packages=["com.already.charting", "com.base.flat"],
            baseline_window=(2, 24))
        assert comparison.baseline.total == 1


class TestFigure5:
    def test_case_study_timeline(self):
        archive = build_impact_archive()
        dataset = build_dataset()
        timeline = case_study_timeline(archive, dataset,
                                       "com.app.one", "top_free")
        assert timeline.campaign_start == 2
        assert timeline.appeared_after_campaign_start()
        by_day = {point.day: point.percentile for point in timeline.points}
        assert by_day[4] == pytest.approx(0.99)
        assert by_day[0] is None


class TestEnforcement:
    def test_decrease_detection(self):
        archive = CrawlArchive()
        for day, installs in ((0, 1000), (2, 1000), (4, 500)):
            archive.add_profile(profile("com.filtered.app", day, installs))
        for day, installs in ((0, 100), (2, 500)):
            archive.add_profile(profile("com.growing.app", day, installs))
        assert install_decrease_flag(archive, "com.filtered.app")
        assert not install_decrease_flag(archive, "com.growing.app")
        observations = enforcement_decreases(archive, {
            "Unvetted": ["com.filtered.app", "com.growing.app"],
        })
        assert observations[0].decreased == 1
        assert observations[0].fraction == pytest.approx(0.5)


class TestFigure6AndArbitrage:
    def test_ad_library_distribution(self):
        scan = {"com.a": 2, "com.b": 7, "com.c": 5, "com.d": 0}
        groups = {"Activity": ["com.b", "com.c"], "No activity": ["com.a", "com.d"]}
        distributions = {d.label: d
                         for d in ad_library_distribution(scan, groups)}
        assert distributions["Activity"].fraction_with_at_least(5) == 1.0
        assert distributions["No activity"].fraction_with_at_least(5) == 0.0
        assert distributions["Activity"].cdf_at(5) == pytest.approx(0.5)
        series = distributions["Activity"].series(max_count=8)
        assert series[-1] == (8, 1.0)

    def test_split_by_offer_type(self):
        split = split_packages_by_offer_type(build_dataset())
        assert split["Activity offers"] == [
            "com.app.one", "com.app.three", "com.app.two"]
        assert split["No activity offers"] == ["com.app.five", "com.app.four"]

    def test_arbitrage_stats(self):
        stats = arbitrage_stats(build_dataset(), vetted_names=("Fyber",))
        assert stats.total_apps == 5
        assert stats.arbitrage_apps == 1
        assert stats.vetted_fraction == pytest.approx(1 / 3)
        assert stats.unvetted_arbitrage == 0


class TestTables7And8:
    def _snapshot(self):
        db = CrunchbaseDatabase()
        db.add_organization(Organization("org1", "Dev One",
                                         "https://devone.example", "US"))
        db.add_organization(Organization("org2", "Base Co",
                                         "https://baseco.example", "US"))
        db.add_round(FundingRound("org1", day=20, round_type="Series A",
                                  amount_usd=30e6,
                                  investor_name="VC", investor_type="VC investor"))
        return db.snapshot(as_of_day=200)

    def _archive(self):
        archive = CrawlArchive()
        archive.add_profile(profile("com.app.one", 2, 1_000_000,
                                    developer="d1", name="Dev One",
                                    website="https://devone.example"))
        archive.add_profile(profile("com.app.four", 2, 100,
                                    developer="d2", name="Anon 9921"))
        archive.add_profile(profile("com.base.flat", 0, 10_000,
                                    developer="d3", name="Base Co",
                                    website="https://baseco.example"))
        return archive

    def test_funding_comparison(self):
        comparison = funding_comparison(
            self._archive(), build_dataset(), self._snapshot(),
            vetted_packages=["com.app.one"],
            unvetted_packages=["com.app.four"],
            baseline_packages=["com.base.flat"],
            baseline_window_start=0)
        assert comparison.vetted.apps_matched == 1
        assert comparison.vetted.funded_after_campaign == 1
        assert comparison.unvetted.apps_matched == 0  # no website, junk name
        assert comparison.baseline.apps_matched == 1
        assert comparison.baseline.funded_after_campaign == 0

    def test_funded_packages_and_breakdown(self):
        dataset = build_dataset()
        funded = funded_packages(self._archive(), dataset, self._snapshot(),
                                 ["com.app.one", "com.app.four"])
        assert funded == ["com.app.one"]
        breakdown = funded_offer_breakdown(dataset, funded)
        assert breakdown.funded_app_count == 1
        assert breakdown.activity_app_fraction == 1.0
        assert breakdown.no_activity_app_fraction == 0.0
        assert breakdown.activity_average_payout == pytest.approx(0.42)
