"""Responsible-disclosure workflow tests (Section 5.1)."""

import random

import pytest

from repro.disclosure.campaign import DisclosureCampaign
from repro.monitor.crawler import CrawlArchive
from repro.monitor.dataset import OfferDataset
from tests.analysis.test_tables import SPEC, obs, profile


@pytest.fixture()
def world_slice():
    dataset = OfferDataset({"com.aff.app": SPEC})
    dataset.ingest_all([
        obs("Fyber", "f1", "com.pop.big", "Install and Register", 0.30, day=2),
        obs("RankApp", "r9", "com.pop.big", "Install and Launch", 0.02, day=3),
        obs("Fyber", "f2", "com.pop.nosite", "Install and Launch", 0.06, day=2),
        obs("Fyber", "f3", "com.tiny.app", "Install and Launch", 0.06, day=2),
    ])
    archive = CrawlArchive()
    archive.add_profile(profile("com.pop.big", 4, 10_000_000,
                                developer="d-big", name="Big Corp",
                                website="https://bigcorp.example"))
    archive.add_profile(profile("com.pop.nosite", 4, 5_000_000,
                                developer="d-anon", name="Anon"))
    archive.add_profile(profile("com.tiny.app", 4, 1_000, developer="d-tiny"))
    return dataset, archive


class TestTargetSelection:
    def test_popularity_threshold(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset)
        targets = {t.package for t in campaign.select_targets()}
        assert targets == {"com.pop.big", "com.pop.nosite"}

    def test_notice_lists_all_iips(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset)
        by_package = {t.package: t for t in campaign.select_targets()}
        assert by_package["com.pop.big"].iips == ("Fyber", "RankApp")

    def test_developer_without_website_is_unreachable(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset)
        by_package = {t.package: t for t in campaign.select_targets()}
        assert not by_package["com.pop.nosite"].deliverable
        assert by_package["com.pop.big"].deliverable

    def test_threshold_is_configurable(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset, min_installs=500)
        assert len(campaign.select_targets()) == 3


class TestOutreach:
    def test_notify_sends_only_deliverable(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset)
        sent = campaign.notify_developers(day=110, rng=random.Random(0))
        assert sent == 1
        assert len(campaign.notices) == 2

    def test_response_model_statistics(self, world_slice):
        dataset, archive = world_slice
        responses = 0
        trials = 400
        for seed in range(trials):
            campaign = DisclosureCampaign(archive, dataset)
            campaign.notify_developers(day=110, rng=random.Random(seed))
            responses += len(campaign.responses)
        # One deliverable notice per trial at the paper's 3/136 rate.
        assert 0.005 < responses / trials < 0.06

    def test_responders_are_unaware_and_blame_marketers(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset)
        campaign.notify_developers(day=110, rng=random.Random(1),
                                   response_rate=1.0)
        assert campaign.responses
        for response in campaign.responses:
            assert not response.was_aware
            assert response.blames_marketing_org
            assert response.day > 110

    def test_google_acknowledges_only(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset)
        assert not campaign.google_acknowledged
        campaign.notify_google()
        assert campaign.google_acknowledged

    def test_summary_and_render(self, world_slice):
        dataset, archive = world_slice
        campaign = DisclosureCampaign(archive, dataset)
        campaign.notify_developers(day=110, rng=random.Random(1),
                                   response_rate=1.0)
        campaign.notify_google()
        summary = campaign.summary()
        assert summary["apps_selected"] == 2
        assert summary["notices_sent"] == 1
        assert summary["responses"] == summary["responders_unaware"]
        text = campaign.render()
        assert "Responsible disclosure" in text
        assert "acknowledgement only" in text
