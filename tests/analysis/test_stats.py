"""Chi-squared implementation tests, cross-checked against scipy."""

import math

import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    chi2_sf,
    chi_squared_independence,
    empirical_cdf,
    mean,
    median,
    two_by_two,
)


class TestChi2Sf:
    @pytest.mark.parametrize("x", [0.1, 0.5, 1.0, 3.84, 10.0, 26.0, 39.9, 80.0])
    @pytest.mark.parametrize("dof", [1, 2, 5, 10])
    def test_matches_scipy(self, x, dof):
        assert chi2_sf(x, dof) == pytest.approx(
            scipy.stats.chi2.sf(x, dof), rel=1e-9, abs=1e-12)

    def test_boundaries(self):
        assert chi2_sf(0.0, 1) == 1.0
        assert chi2_sf(1000.0, 1) < 1e-100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chi2_sf(-1.0, 1)
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)

    @settings(max_examples=50)
    @given(st.floats(min_value=0.01, max_value=200.0),
           st.integers(min_value=1, max_value=30))
    def test_matches_scipy_property(self, x, dof):
        assert chi2_sf(x, dof) == pytest.approx(
            scipy.stats.chi2.sf(x, dof), rel=1e-8, abs=1e-12)


class TestIndependence:
    def test_paper_table5_vetted_case(self):
        # Table 5: vetted 61/431 vs baseline 6/294 -> chi2 = 26.0.
        result = two_by_two(61, 431, 6, 294)
        assert result.chi2 == pytest.approx(26.0, abs=0.5)
        assert result.p_value == pytest.approx(3.378e-7, rel=0.2)
        assert result.rejects_null()

    def test_paper_table5_unvetted_case(self):
        # Table 5: unvetted 88/450 vs baseline 6/294 -> chi2 = 39.9.
        result = two_by_two(88, 450, 6, 294)
        assert result.chi2 == pytest.approx(39.9, abs=0.7)
        assert result.rejects_null()

    def test_paper_table6_unvetted_not_significant(self):
        # Table 6: unvetted 12/472 vs baseline 8/253 -> chi2 = 0.22, p = 0.64.
        result = two_by_two(12, 472, 8, 253)
        assert result.chi2 == pytest.approx(0.22, abs=0.15)
        assert not result.rejects_null()

    def test_matches_scipy_contingency(self):
        table = [[30, 162], [5, 77]]
        ours = chi_squared_independence(table)
        theirs = scipy.stats.chi2_contingency(table, correction=False)
        assert ours.chi2 == pytest.approx(theirs[0])
        assert ours.p_value == pytest.approx(theirs[1])
        assert ours.dof == theirs[2]

    def test_three_by_two(self):
        table = [[10, 20], [15, 15], [20, 10]]
        ours = chi_squared_independence(table)
        theirs = scipy.stats.chi2_contingency(table, correction=False)
        assert ours.chi2 == pytest.approx(theirs[0])
        assert ours.dof == 2

    def test_independent_table_accepts_null(self):
        result = chi_squared_independence([[50, 50], [100, 100]])
        assert result.chi2 == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[1, 2]])
        with pytest.raises(ValueError):
            chi_squared_independence([[1], [2]])
        with pytest.raises(ValueError):
            chi_squared_independence([[1, 2], [3]])
        with pytest.raises(ValueError):
            chi_squared_independence([[-1, 2], [3, 4]])
        with pytest.raises(ValueError):
            chi_squared_independence([[0, 0], [0, 0]])
        with pytest.raises(ValueError):
            chi_squared_independence([[0, 0], [1, 1]])

    @settings(max_examples=30)
    @given(st.integers(1, 500), st.integers(1, 500),
           st.integers(1, 500), st.integers(1, 500))
    def test_two_by_two_matches_scipy_property(self, a, b, c, d):
        ours = two_by_two(a, b, c, d)
        theirs = scipy.stats.chi2_contingency([[a, b], [c, d]],
                                              correction=False)
        assert ours.chi2 == pytest.approx(theirs[0], rel=1e-9)
        assert ours.p_value == pytest.approx(theirs[1], rel=1e-6, abs=1e-12)


class TestDescriptive:
    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        with pytest.raises(ValueError):
            mean([])

    def test_empirical_cdf(self):
        values = [1, 2, 2, 5]
        assert empirical_cdf(values, [0, 1, 2, 5, 10]) == [0, 0.25, 0.75, 1.0, 1.0]
        with pytest.raises(ValueError):
            empirical_cdf([], [1])


class TestWilsonInterval:
    def test_matches_known_values(self):
        # Classic reference: 10/100 at 95% -> approx (0.055, 0.174).
        from repro.analysis.stats import wilson_interval
        low, high = wilson_interval(10, 100)
        assert low == pytest.approx(0.0552, abs=0.002)
        assert high == pytest.approx(0.1744, abs=0.002)

    def test_contains_point_estimate(self):
        from repro.analysis.stats import wilson_interval
        for successes, total in ((0, 10), (5, 10), (10, 10), (30, 492)):
            low, high = wilson_interval(successes, total)
            assert low <= successes / total <= high
            assert 0.0 <= low <= high <= 1.0

    def test_narrows_with_sample_size(self):
        from repro.analysis.stats import wilson_interval
        narrow = wilson_interval(100, 1000)
        wide = wilson_interval(10, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        from repro.analysis.stats import wilson_interval
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)
