"""Lockstep-detection tests (the paper's Section-5.2 proposal)."""

import pytest

from repro.detection.bridge import TrainingCorpusConfig, build_training_corpus
from repro.detection.evaluation import (
    DetectionReport,
    evaluate_detector,
    sweep_thresholds,
)
from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.lockstep import DetectorConfig, LockstepDetector


def event(device, package, day=0, hour=10.0, block="10.0.0.0/24",
          ssid="aaaa", opened=True, engagement=30.0):
    return DeviceInstallEvent(
        device_id=device, package=package, day=day, hour=hour,
        ip_slash24=block, ssid_hash=ssid, opened=opened,
        engagement_seconds=engagement)


class TestInstallLog:
    def test_indexing(self):
        log = InstallLog([event("d1", "com.a"), event("d1", "com.b"),
                          event("d2", "com.a")])
        assert len(log) == 3
        assert log.packages() == ["com.a", "com.b"]
        assert log.devices() == ["d1", "d2"]
        assert log.packages_of("d1") == {"com.a", "com.b"}
        assert len(log.events_for_package("com.a")) == 2

    def test_events_sorted_by_time(self):
        log = InstallLog([event("d1", "com.a", day=1),
                          event("d2", "com.a", day=0)])
        times = [e.day for e in log.events_for_package("com.a")]
        assert times == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            event("d1", "com.a", hour=25.0)
        with pytest.raises(ValueError):
            event("d1", "com.a", engagement=-1.0)


class TestBurstDiscovery:
    def _burst_log(self, size=15, opened=False):
        events = [event(f"d{i}", "com.target", day=2,
                        hour=10.0 + i * 0.1, opened=opened)
                  for i in range(size)]
        return InstallLog(events)

    def test_low_engagement_burst_detected(self):
        detector = LockstepDetector()
        clusters = detector.find_bursts(self._burst_log())
        assert len(clusters) == 1
        assert clusters[0].size == 15
        assert clusters[0].low_engagement_fraction == 1.0

    def test_small_burst_ignored(self):
        detector = LockstepDetector()
        assert detector.find_bursts(self._burst_log(size=8)) == []

    def test_engaged_burst_ignored(self):
        # A genuine launch spike: everyone opens and uses the app.
        events = [event(f"d{i}", "com.viral", hour=10.0 + i * 0.1,
                        opened=True, engagement=900.0)
                  for i in range(30)]
        detector = LockstepDetector()
        assert detector.find_bursts(InstallLog(events)) == []

    def test_spread_out_installs_ignored(self):
        events = [event(f"d{i}", "com.slow", day=i // 2, hour=(i * 7) % 24,
                        opened=False)
                  for i in range(30)]
        detector = LockstepDetector()
        assert detector.find_bursts(InstallLog(events)) == []

    def test_colocated_burst_marked(self):
        events = [event(f"d{i}", "com.farmapp", hour=10.0 + i * 0.05,
                        block="203.0.113.0/24", ssid="farm", opened=False)
                  for i in range(15)]
        detector = LockstepDetector()
        cluster = detector.find_bursts(InstallLog(events))[0]
        assert cluster.dominant_slash24 == "203.0.113.0/24"
        assert cluster.dominant_ssid_fraction == 1.0

    def test_distributed_burst_not_marked_colocated(self):
        events = [event(f"d{i}", "com.app", hour=10.0 + i * 0.05,
                        block=f"10.{i}.0.0/24", ssid=f"s{i}", opened=False)
                  for i in range(15)]
        detector = LockstepDetector()
        cluster = detector.find_bursts(InstallLog(events))[0]
        assert cluster.dominant_slash24 is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(burst_window_hours=0)
        with pytest.raises(ValueError):
            DetectorConfig(min_burst_size=1)


class TestDeviceFlagging:
    def test_repeat_participants_flagged(self):
        events = []
        for package in ("com.offer.a", "com.offer.b"):
            day = 1 if package.endswith("a") else 3
            for i in range(15):
                events.append(event(f"worker{i}", package, day=day,
                                    hour=9.0 + i * 0.1, opened=False,
                                    block=f"10.{i}.0.0/24", ssid=f"s{i}"))
        events.append(event("bystander", "com.offer.a", day=1, hour=9.5,
                            opened=True, engagement=700.0,
                            block="10.99.0.0/24", ssid="home"))
        detector = LockstepDetector()
        flagged = detector.flag_devices(InstallLog(events))
        assert {f"worker{i}" for i in range(15)} <= flagged
        assert "bystander" not in flagged

    def test_one_time_participants_not_flagged_without_colocation(self):
        events = [event(f"d{i}", "com.once", hour=9.0 + i * 0.1,
                        opened=False, block=f"10.{i}.0.0/24", ssid=f"s{i}")
                  for i in range(15)]
        detector = LockstepDetector()
        assert detector.flag_devices(InstallLog(events)) == set()

    def test_farm_members_flagged_from_single_burst(self):
        # Colocation doubles the participation weight.
        events = [event(f"farm{i}", "com.once", hour=9.0 + i * 0.1,
                        opened=False, block="203.0.113.0/24", ssid="farm")
                  for i in range(15)]
        detector = LockstepDetector()
        assert len(detector.flag_devices(InstallLog(events))) == 15

    def test_flag_apps(self):
        events = []
        for day in (1, 5):
            for i in range(15):
                events.append(event(f"w{day}{i}", "com.repeat", day=day,
                                    hour=9.0 + i * 0.1, opened=False))
        detector = LockstepDetector()
        assert detector.flag_apps(InstallLog(events)) == ["com.repeat"]
        assert detector.flag_apps(InstallLog(events), min_clusters=3) == []


class TestEvaluation:
    def test_report_metrics(self):
        report = evaluate_detector({"a", "b", "c"}, {"a", "b", "d"},
                                   ["a", "b", "c", "d", "e"])
        assert report.true_positives == 2
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.true_negatives == 1
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)
        assert 0 < report.f1 < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_detector({"x"}, set(), ["a"])
        with pytest.raises(ValueError):
            evaluate_detector(set(), {"x"}, ["a"])

    def test_empty_edge_cases(self):
        report = evaluate_detector(set(), set(), ["a", "b"])
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_empty_flagged_with_ground_truth(self):
        # A detector that flags nothing: perfect specificity, zero recall.
        report = evaluate_detector(set(), {"a"}, ["a", "b", "c"])
        assert report.recall == 0.0
        assert report.false_negatives == 1
        assert report.false_positive_rate == 0.0
        assert report.true_negatives == 2

    def test_empty_ground_truth_with_flagged(self):
        # Nothing was incentivized: every flag is a false positive.
        report = evaluate_detector({"a", "b"}, set(), ["a", "b", "c"])
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.false_positives == 2
        assert report.false_positive_rate == pytest.approx(2 / 3)

    def test_unknown_flagged_device_rejected(self):
        with pytest.raises(ValueError, match="flagged"):
            evaluate_detector({"ghost"}, {"a"}, ["a", "b"])

    def test_unknown_ground_truth_device_rejected(self):
        with pytest.raises(ValueError, match="ground truth"):
            evaluate_detector({"a"}, {"ghost"}, ["a", "b"])

    def test_sweep_recall_non_increasing(self):
        # Raising the threshold can only shrink the flagged set, so
        # recall (and the flagged count) must never increase.
        scores = {"a": 3.0, "b": 2.0, "c": 1.0, "d": 0.5}
        sweep = sweep_thresholds(scores, {"a", "b", "c"},
                                 ["a", "b", "c", "d", "e"],
                                 thresholds=[0.0, 0.5, 1.0, 2.0, 3.0, 9.0])
        recalls = [report.recall for _, report in sweep]
        assert recalls == sorted(recalls, reverse=True)
        assert recalls[0] == 1.0 and recalls[-1] == 0.0

    def test_sweep_empty_scores(self):
        sweep = sweep_thresholds({}, set(), ["a"], thresholds=[0.5, 1.0])
        assert [r.true_positives + r.false_positives
                for _, r in sweep] == [0, 0]


class TestEndToEnd:
    def test_detector_separates_workers_from_organic(self):
        log, incentivized = build_training_corpus(seed=5)
        detector = LockstepDetector()
        flagged = detector.flag_devices(log)
        report = evaluate_detector(flagged, incentivized, log.devices())
        assert report.precision > 0.9
        assert report.recall > 0.5
        assert report.false_positive_rate < 0.02

    def test_threshold_sweep_is_monotone_in_flagged_count(self):
        log, incentivized = build_training_corpus(seed=5)
        detector = LockstepDetector()
        scores = detector.suspicion_scores(log)
        sweep = sweep_thresholds(scores, incentivized, log.devices(),
                                 thresholds=[0.5, 1.0, 2.0, 4.0])
        flagged_counts = [r.true_positives + r.false_positives
                          for _, r in sweep]
        assert flagged_counts == sorted(flagged_counts, reverse=True)

    def test_corpus_is_deterministic(self):
        log_a, truth_a = build_training_corpus(seed=9)
        log_b, truth_b = build_training_corpus(seed=9)
        assert truth_a == truth_b
        assert len(log_a) == len(log_b)

    def test_advertised_apps_surface_as_policy_candidates(self):
        log, _ = build_training_corpus(seed=5)
        detector = LockstepDetector()
        flagged_apps = detector.flag_apps(log, min_clusters=1)
        assert any(p.startswith("com.advertised.") for p in flagged_apps)
        assert not any(p.startswith("com.popular.") for p in flagged_apps)
