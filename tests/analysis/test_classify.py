"""Offer-description classifier tests."""

import random

import pytest

from repro.analysis.classify import OfferClassifier
from repro.iip.offers import (
    ActivityKind,
    OfferCategory,
    OfferDescriptionGenerator,
)


@pytest.fixture()
def classifier():
    return OfferClassifier()


class TestPaperExamples:
    """Every literal offer description quoted in the paper."""

    @pytest.mark.parametrize("text", [
        "Install and Launch",
        "Install and run the application.",
    ])
    def test_no_activity(self, classifier, text):
        result = classifier.classify(text)
        assert result.category is OfferCategory.NO_ACTIVITY

    @pytest.mark.parametrize("text", [
        "Install and Register",
        "Install and register",
    ])
    def test_registration(self, classifier, text):
        result = classifier.classify(text)
        assert result.activity_kind is ActivityKind.REGISTRATION

    @pytest.mark.parametrize("text", [
        "Install and Reach level 10",
        "Install, register, and download a song",
    ])
    def test_usage(self, classifier, text):
        result = classifier.classify(text)
        assert result.activity_kind is ActivityKind.USAGE

    @pytest.mark.parametrize("text", [
        "Install and make a $4.99 in-app purchase",
        "Install & Make any purchase",
    ])
    def test_purchase(self, classifier, text):
        result = classifier.classify(text)
        assert result.activity_kind is ActivityKind.PURCHASE

    def test_cash_time_arbitrage_offer(self, classifier):
        text = ("Install and reach 850 points by completing surveys, "
                "watching videos and shopping for deals in the app")
        result = classifier.classify(text)
        assert result.is_arbitrage
        assert result.activity_kind is ActivityKind.USAGE

    def test_dashlane_offer(self, classifier):
        text = "Install the app, create an account, and save two passwords"
        result = classifier.classify(text)
        assert result.is_activity
        assert result.activity_kind is ActivityKind.REGISTRATION


class TestGeneratorAgreement:
    """The classifier must recover the generator's ground truth."""

    def _cases(self, count=300):
        rng = random.Random(13)
        generator = OfferDescriptionGenerator(rng)
        cases = []
        for _ in range(count):
            draw = rng.random()
            if draw < 0.4:
                truth = (OfferCategory.NO_ACTIVITY, None, False)
            elif draw < 0.6:
                truth = (OfferCategory.ACTIVITY, ActivityKind.USAGE, False)
            elif draw < 0.75:
                truth = (OfferCategory.ACTIVITY, ActivityKind.REGISTRATION, False)
            elif draw < 0.9:
                truth = (OfferCategory.ACTIVITY, ActivityKind.PURCHASE, False)
            else:
                truth = (OfferCategory.ACTIVITY, ActivityKind.USAGE, True)
            text = generator.describe(truth[0], truth[1], "PlainApp",
                                      is_arbitrage=truth[2])
            cases.append((text, truth))
        return cases

    def test_category_accuracy(self, classifier):
        cases = self._cases()
        correct = sum(
            classifier.classify(text).category is truth[0]
            for text, truth in cases)
        assert correct / len(cases) > 0.97

    def test_kind_accuracy(self, classifier):
        cases = [(t, truth) for t, truth in self._cases()
                 if truth[0] is OfferCategory.ACTIVITY and not truth[2]]
        correct = sum(
            classifier.classify(text).activity_kind is truth[1]
            for text, truth in cases)
        assert correct / len(cases) > 0.9

    def test_arbitrage_recall(self, classifier):
        cases = [(t, truth) for t, truth in self._cases() if truth[2]]
        assert cases
        assert all(classifier.classify(text).is_arbitrage
                   for text, _ in cases)

    def test_no_activity_never_marked_arbitrage(self, classifier):
        cases = [(t, truth) for t, truth in self._cases()
                 if truth[0] is OfferCategory.NO_ACTIVITY]
        assert not any(classifier.classify(text).is_arbitrage
                       for text, _ in cases)


class TestLocalizedClassification:
    """The classifier must recover ground truth in every wall language."""

    def _cases(self, language, count=120):
        rng = random.Random(17)
        generator = OfferDescriptionGenerator(rng)
        cases = []
        for _ in range(count):
            draw = rng.random()
            if draw < 0.4:
                truth = (OfferCategory.NO_ACTIVITY, None)
            elif draw < 0.65:
                truth = (OfferCategory.ACTIVITY, ActivityKind.USAGE)
            elif draw < 0.85:
                truth = (OfferCategory.ACTIVITY, ActivityKind.REGISTRATION)
            else:
                truth = (OfferCategory.ACTIVITY, ActivityKind.PURCHASE)
            text = generator.describe(truth[0], truth[1], "PlainApp",
                                      language=language)
            cases.append((text, truth))
        return cases

    @pytest.mark.parametrize("language", ["es", "de", "ru", "pt"])
    def test_category_accuracy(self, classifier, language):
        cases = self._cases(language)
        correct = sum(classifier.classify(text).category is truth[0]
                      for text, truth in cases)
        assert correct / len(cases) > 0.95

    @pytest.mark.parametrize("language", ["es", "de", "ru", "pt"])
    def test_kind_accuracy(self, classifier, language):
        cases = [(t, truth) for t, truth in self._cases(language)
                 if truth[0] is OfferCategory.ACTIVITY]
        correct = sum(classifier.classify(text).activity_kind is truth[1]
                      for text, truth in cases)
        assert correct / len(cases) > 0.9
