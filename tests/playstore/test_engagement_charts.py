"""Engagement book and charts engine tests."""

import pytest

from repro.playstore.catalog import AppListing, Catalog, Developer
from repro.playstore.charts import ChartKind, ChartsEngine
from repro.playstore.engagement import DailyEngagement, EngagementBook


def publish(catalog, package, genre="Tools", price=0.0):
    catalog.publish(AppListing(
        package=package, title=package, genre=genre,
        developer=Developer(developer_id=f"dev-{package}", name=package,
                            country="US"),
        release_day=0, price_usd=price))


class TestEngagementBook:
    def setup_method(self):
        self.book = EngagementBook()

    def test_sessions_accumulate(self):
        self.book.record_session("com.a", 0, seconds=60)
        self.book.record_session("com.a", 0, seconds=120, registered=True)
        day = self.book.for_day("com.a", 0)
        assert day.active_users == 2
        assert day.sessions == 2
        assert day.session_seconds == 180
        assert day.registrations == 1
        assert day.mean_session_seconds == 90

    def test_missing_day_is_empty(self):
        day = self.book.for_day("com.a", 9)
        assert day.active_users == 0
        assert day.mean_session_seconds == 0.0

    def test_window_aggregation(self):
        for day in range(5):
            self.book.record_session("com.a", day, seconds=10)
        window = self.book.window("com.a", 1, 3)
        assert window.sessions == 3

    def test_revenue_tracking(self):
        self.book.record_session("com.a", 0, seconds=30, purchase_usd=4.99)
        self.book.record_session("com.a", 2, seconds=30, purchase_usd=0.99)
        assert self.book.revenue_through("com.a", 1) == pytest.approx(4.99)
        assert self.book.revenue_through("com.a", 2) == pytest.approx(5.98)

    def test_engagement_score_rises_with_activity(self):
        self.book.record_session("com.a", 0, seconds=60)
        low = self.book.engagement_score("com.a", 0)
        for _ in range(50):
            self.book.record_session("com.a", 0, seconds=600, registered=True)
        assert self.book.engagement_score("com.a", 0) > low

    def test_score_uses_trailing_window_only(self):
        self.book.record_session("com.a", 0, seconds=60)
        assert self.book.engagement_score("com.a", 30) == 0.0

    def test_merge(self):
        a = DailyEngagement(active_users=1, sessions=2, session_seconds=30)
        a.merge(DailyEngagement(active_users=3, purchase_revenue_usd=1.0))
        assert a.active_users == 4
        assert a.purchase_revenue_usd == 1.0


class TestChartsEngine:
    def setup_method(self):
        self.catalog = Catalog()
        self.book = EngagementBook()
        self.engine = ChartsEngine(self.catalog, self.book, chart_size=3)

    def test_ranking_follows_engagement(self):
        for package, users in (("com.low", 5), ("com.mid", 20), ("com.top", 80)):
            publish(self.catalog, package)
            self.book.record(package, 0, DailyEngagement(active_users=users))
        snapshot = self.engine.snapshot(ChartKind.TOP_FREE, 0)
        assert [entry.package for entry in snapshot.entries] == [
            "com.top", "com.mid", "com.low"]
        assert snapshot.entries[0].rank == 1
        assert snapshot.entries[0].percentile == 1.0

    def test_chart_size_truncates(self):
        for index in range(6):
            package = f"com.app{index}"
            publish(self.catalog, package)
            self.book.record(package, 0, DailyEngagement(active_users=index + 1))
        snapshot = self.engine.snapshot(ChartKind.TOP_FREE, 0)
        assert len(snapshot.entries) == 3

    def test_zero_score_apps_never_chart(self):
        publish(self.catalog, "com.ghost")
        snapshot = self.engine.snapshot(ChartKind.TOP_FREE, 0)
        assert not snapshot.contains("com.ghost")

    def test_games_chart_filters_non_games(self):
        publish(self.catalog, "com.game", genre="Puzzle")
        publish(self.catalog, "com.tool", genre="Tools")
        for package in ("com.game", "com.tool"):
            self.book.record(package, 0, DailyEngagement(active_users=10))
        snapshot = self.engine.snapshot(ChartKind.TOP_GAMES, 0)
        assert snapshot.contains("com.game")
        assert not snapshot.contains("com.tool")

    def test_free_chart_excludes_paid(self):
        publish(self.catalog, "com.paid", price=1.99)
        self.book.record("com.paid", 0, DailyEngagement(active_users=10))
        assert not self.engine.snapshot(ChartKind.TOP_FREE, 0).contains("com.paid")

    def test_grossing_ranks_by_revenue(self):
        publish(self.catalog, "com.rich")
        publish(self.catalog, "com.poor")
        self.book.record("com.rich", 0, DailyEngagement(purchase_revenue_usd=100))
        self.book.record("com.poor", 0, DailyEngagement(
            active_users=1000, purchase_revenue_usd=1))
        snapshot = self.engine.snapshot(ChartKind.TOP_GROSSING, 0)
        assert snapshot.entries[0].package == "com.rich"

    def test_deterministic_tie_break(self):
        publish(self.catalog, "com.b")
        publish(self.catalog, "com.a")
        for package in ("com.a", "com.b"):
            self.book.record(package, 0, DailyEngagement(active_users=5))
        snapshot = self.engine.snapshot(ChartKind.TOP_FREE, 0)
        assert [entry.package for entry in snapshot.entries] == ["com.a", "com.b"]

    def test_entry_lookup_helpers(self):
        publish(self.catalog, "com.a")
        self.book.record("com.a", 0, DailyEngagement(active_users=5))
        snapshot = self.engine.snapshot(ChartKind.TOP_FREE, 0)
        assert snapshot.ranks() == {"com.a": 1}
        assert snapshot.entry_for("com.a").rank == 1
        assert snapshot.entry_for("com.none") is None

    def test_bad_chart_size_rejected(self):
        with pytest.raises(ValueError):
            ChartsEngine(self.catalog, self.book, chart_size=0)
