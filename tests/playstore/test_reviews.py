"""Review storage and its effect on the public crawl surface."""

import pytest

from repro.playstore.reviews import AppReview, ReviewBook


def review(reviewer="rev-1", package="app.x", day=3, hour=9.5, rating=5):
    return AppReview(reviewer_id=reviewer, package=package, day=day,
                     hour=hour, rating=rating)


class TestAppReview:
    def test_timestamp(self):
        assert review(day=2, hour=6.0).timestamp_hours == 54.0

    @pytest.mark.parametrize("rating", [0, 6, -1])
    def test_rating_bounds(self, rating):
        with pytest.raises(ValueError, match="rating"):
            review(rating=rating)


class TestReviewBook:
    def test_indexes(self):
        book = ReviewBook()
        book.add(review(reviewer="a", package="app.x", rating=5))
        book.add(review(reviewer="b", package="app.x", rating=3))
        book.add(review(reviewer="a", package="app.y", rating=4))
        assert len(book) == 3
        assert book.packages() == ["app.x", "app.y"]
        assert book.reviewers() == ["a", "b"]
        assert book.review_count("app.x") == 2
        assert book.mean_rating("app.x") == 4.0
        assert book.mean_rating("app.unknown") == 0.0

    def test_all_reviews_ordered_by_package(self):
        book = ReviewBook()
        book.add(review(package="app.z"))
        book.add(review(package="app.a"))
        assert [r.package for r in book.all_reviews()] == ["app.a", "app.z"]


class TestStoreSurface:
    def build_store(self):
        from repro.playstore.catalog import AppListing, Developer
        from repro.playstore.store import PlayStore
        store = PlayStore()
        listing = AppListing(
            package="app.x", title="X", genre="Tools",
            developer=Developer(developer_id="dev-1", name="Dev",
                                country="US"),
            release_day=0)
        store.publish(listing)
        return store

    def test_rating_fields_gated_on_reviews(self):
        # Naive populations never review, so the frozen naive crawl
        # exports must not grow rating keys.
        store = self.build_store()
        profile = store.public_profile("app.x", day=0)
        assert "rating" not in profile
        assert "review_count" not in profile
        store.record_review(review(package="app.x", rating=4))
        store.record_review(review(reviewer="rev-2", package="app.x",
                                   rating=5))
        profile = store.public_profile("app.x", day=0)
        assert profile["review_count"] == 2
        assert profile["rating"] == 4.5

    def test_review_for_unpublished_app_rejected(self):
        store = self.build_store()
        with pytest.raises(KeyError, match="unpublished"):
            store.record_review(review(package="app.ghost"))
