"""Catalog, developer, and install-ledger tests."""

import pytest

from repro.playstore.catalog import AppListing, Catalog, Developer
from repro.playstore.ledger import InstallBatch, InstallLedger, InstallSource


def make_listing(package="com.example.app", genre="Tools", **kwargs):
    developer = kwargs.pop("developer", None) or Developer(
        developer_id="dev1", name="Example Inc", country="US")
    return AppListing(package=package, title="Example", genre=genre,
                      developer=developer, release_day=0, **kwargs)


class TestCatalog:
    def test_publish_and_get(self):
        catalog = Catalog()
        listing = make_listing()
        catalog.publish(listing)
        assert catalog.get("com.example.app") is listing
        assert "com.example.app" in catalog
        assert len(catalog) == 1

    def test_duplicate_publish_rejected(self):
        catalog = Catalog()
        catalog.publish(make_listing())
        with pytest.raises(ValueError):
            catalog.publish(make_listing())

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            Catalog().get("com.missing")

    def test_by_developer(self):
        catalog = Catalog()
        developer = Developer(developer_id="d", name="D", country="DE")
        catalog.publish(make_listing("com.a.one", developer=developer))
        catalog.publish(make_listing("com.a.two", developer=developer))
        catalog.publish(make_listing("com.b.other"))
        assert [l.package for l in catalog.by_developer("d")] == [
            "com.a.one", "com.a.two"]

    def test_unpublish(self):
        catalog = Catalog()
        catalog.publish(make_listing())
        catalog.unpublish("com.example.app")
        assert "com.example.app" not in catalog

    def test_invalid_genre_rejected(self):
        with pytest.raises(ValueError):
            make_listing(genre="Nonexistent Genre")

    def test_invalid_package_rejected(self):
        with pytest.raises(ValueError):
            make_listing(package="nodots")

    def test_game_flag(self):
        assert make_listing(genre="Puzzle").is_game
        assert not make_listing(genre="Finance").is_game

    def test_empty_developer_id_rejected(self):
        with pytest.raises(ValueError):
            Developer(developer_id="", name="X", country="US")


class TestInstallLedger:
    def setup_method(self):
        self.ledger = InstallLedger()

    def test_single_installs_accumulate(self):
        for day in range(3):
            self.ledger.record_install("com.a", day, InstallSource.ORGANIC)
        assert self.ledger.total_installs("com.a") == 3

    def test_batches_and_sources(self):
        self.ledger.record(InstallBatch("com.a", 0, InstallSource.ORGANIC, 10))
        self.ledger.record(InstallBatch("com.a", 1, InstallSource.INCENTIVIZED,
                                        5, campaign_id="c1"))
        by_source = self.ledger.installs_by_source("com.a")
        assert by_source[InstallSource.ORGANIC] == 10
        assert by_source[InstallSource.INCENTIVIZED] == 5

    def test_through_day_cutoff(self):
        self.ledger.record(InstallBatch("com.a", 0, InstallSource.ORGANIC, 10))
        self.ledger.record(InstallBatch("com.a", 5, InstallSource.ORGANIC, 7))
        assert self.ledger.total_installs("com.a", through_day=4) == 10
        assert self.ledger.total_installs("com.a", through_day=5) == 17

    def test_campaign_attribution(self):
        self.ledger.record(InstallBatch("com.a", 0, InstallSource.INCENTIVIZED,
                                        5, campaign_id="c1"))
        self.ledger.record(InstallBatch("com.a", 0, InstallSource.INCENTIVIZED,
                                        3, campaign_id="c2"))
        assert self.ledger.campaign_installs("c1") == 5
        assert len(self.ledger.campaign_batches("c2")) == 1

    def test_removals_reduce_totals(self):
        self.ledger.record(InstallBatch("com.a", 0, InstallSource.INCENTIVIZED, 500,
                                        campaign_id="c1"))
        self.ledger.remove_installs("com.a", 10, 400)
        assert self.ledger.total_installs("com.a", through_day=9) == 500
        assert self.ledger.total_installs("com.a", through_day=10) == 100
        assert self.ledger.removals_for("com.a") == 400

    def test_totals_floor_at_zero(self):
        self.ledger.record(InstallBatch("com.a", 0, InstallSource.ORGANIC, 5))
        self.ledger.remove_installs("com.a", 1, 100)
        assert self.ledger.total_installs("com.a") == 0

    def test_daily_installs(self):
        self.ledger.record(InstallBatch("com.a", 2, InstallSource.ORGANIC, 4))
        daily = self.ledger.daily_installs("com.a", 2)
        assert daily[InstallSource.ORGANIC] == 4
        assert self.ledger.daily_installs("com.a", 3)[InstallSource.ORGANIC] == 0

    def test_invalid_batches_rejected(self):
        with pytest.raises(ValueError):
            InstallBatch("com.a", 0, InstallSource.ORGANIC, 0)
        with pytest.raises(ValueError):
            InstallBatch("com.a", -1, InstallSource.ORGANIC, 1)
        with pytest.raises(ValueError):
            self.ledger.remove_installs("com.a", 0, 0)

    def test_packages_listing(self):
        self.ledger.record(InstallBatch("com.b", 0, InstallSource.ORGANIC, 1))
        self.ledger.record(InstallBatch("com.a", 0, InstallSource.ORGANIC, 1))
        assert list(self.ledger.packages()) == ["com.a", "com.b"]
