"""PlayStore facade, console authorisation, and enforcement tests."""

import random

import pytest

from repro.playstore.catalog import AppListing, Developer
from repro.playstore.ledger import InstallSource
from repro.playstore.policy import CampaignSignals, EnforcementEngine
from repro.playstore.store import PlayStore


def make_store():
    store = PlayStore()
    developer = Developer(developer_id="dev1", name="Honey Labs", country="US")
    store.publish(AppListing(package="com.honey.memos", title="Voice Memos",
                             genre="Tools", developer=developer, release_day=0))
    return store


class TestPlayStoreFacade:
    def test_install_and_binned_display(self):
        store = make_store()
        store.record_install_batch("com.honey.memos", 1,
                                   InstallSource.INCENTIVIZED, 1679, "c1")
        assert store.displayed_installs("com.honey.memos", 1) == 1000
        profile = store.public_profile("com.honey.memos", 1)
        assert profile["installs_label"] == "1,000+"
        assert profile["developer"]["country"] == "US"

    def test_install_for_unknown_app_rejected(self):
        store = make_store()
        with pytest.raises(KeyError):
            store.record_install("com.ghost", 0, InstallSource.ORGANIC)

    def test_zero_count_batch_is_noop(self):
        store = make_store()
        store.record_install_batch("com.honey.memos", 0,
                                   InstallSource.ORGANIC, 0)
        assert store.ledger.total_installs("com.honey.memos") == 0

    def test_console_requires_ownership(self):
        store = make_store()
        store.record_install("com.honey.memos", 0, InstallSource.ORGANIC)
        report = store.console.acquisition_report("dev1", "com.honey.memos", 0, 0)
        assert report.total == 1
        with pytest.raises(PermissionError):
            store.console.acquisition_report("intruder", "com.honey.memos", 0, 0)

    def test_console_daily_series(self):
        store = make_store()
        store.record_install_batch("com.honey.memos", 0,
                                   InstallSource.INCENTIVIZED, 10, "c1")
        store.record_install_batch("com.honey.memos", 2,
                                   InstallSource.ORGANIC, 3)
        series = store.console.daily_install_series("dev1", "com.honey.memos", 0, 2)
        assert series == [10, 0, 3]

    def test_console_verifies_no_organic_installs(self):
        # The paper uses the console to confirm campaigns received no
        # organic installs, so attribution to the IIP is sound.
        store = make_store()
        store.record_install_batch("com.honey.memos", 0,
                                   InstallSource.INCENTIVIZED, 500, "c1")
        report = store.console.acquisition_report("dev1", "com.honey.memos", 0, 5)
        assert report.organic == 0
        assert report.by_source[InstallSource.INCENTIVIZED] == 500


class TestEnforcement:
    def _signals(self, open_rate, emulator_rate=0.0, hours=1.0):
        return CampaignSignals(campaign_id="c1", package="com.honey.memos",
                               installs_delivered=500, open_rate=open_rate,
                               emulator_rate=emulator_rate,
                               delivery_hours=hours, end_day=3)

    def test_high_engagement_campaign_rarely_detected(self):
        store = make_store()
        probability = store.enforcement.detection_probability(
            self._signals(open_rate=1.0, hours=2.5))
        assert probability == 0.0

    def test_low_engagement_campaign_sometimes_detected(self):
        store = make_store()
        probability = store.enforcement.detection_probability(
            self._signals(open_rate=0.55))
        assert 0.005 < probability < 0.1

    def test_detection_removes_campaign_installs(self):
        store = make_store()
        store.record_install_batch("com.honey.memos", 1,
                                   InstallSource.INCENTIVIZED, 600, "c1")
        engine = store.enforcement
        engine.NEVER_OPENED_WEIGHT = 10.0  # force detection
        action = engine.review(self._signals(open_rate=0.0), day=10,
                               rng=random.Random(0))
        assert action is not None
        assert action.installs_removed == 600
        assert store.displayed_installs("com.honey.memos", 9) == 500
        assert store.displayed_installs("com.honey.memos", 10) == 0

    def test_each_campaign_reviewed_once(self):
        store = make_store()
        store.record_install_batch("com.honey.memos", 1,
                                   InstallSource.INCENTIVIZED, 600, "c1")
        engine = store.enforcement
        engine.NEVER_OPENED_WEIGHT = 10.0
        first = engine.review(self._signals(open_rate=0.0), 10, random.Random(0))
        second = engine.review(self._signals(open_rate=0.0), 11, random.Random(0))
        assert first is not None
        assert second is None
        assert len(engine.actions_for("com.honey.memos")) == 1

    def test_detection_calibration_band(self):
        # RankApp-like campaigns (45% never open) should be caught for a
        # few percent of campaigns, not most of them.
        engine = EnforcementEngine(ledger=make_store().ledger)
        probability = engine.detection_probability(self._signals(open_rate=0.55))
        assert 0.01 < probability < 0.05

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            self._signals(open_rate=1.5)
        with pytest.raises(ValueError):
            self._signals(open_rate=0.5, emulator_rate=-0.1)
