"""Play Store HTTPS front-end tests."""

import pytest

from repro.playstore.catalog import AppListing, Developer
from repro.playstore.engagement import DailyEngagement
from repro.playstore.frontend import PLAY_HOST, PlayStoreFrontend
from repro.playstore.ledger import InstallSource
from repro.playstore.store import PlayStore
from tests.conftest import make_client


@pytest.fixture()
def play(fabric, root_ca, rng):
    store = PlayStore()
    developer = Developer(developer_id="dev1", name="Trebel", country="US",
                          website="https://trebel.example")
    store.publish(AppListing(package="com.mmm.trebelmusic", title="TREBEL",
                             genre="Music & Audio", developer=developer,
                             release_day=0))
    clock = {"day": 7}
    frontend = PlayStoreFrontend(fabric, store, root_ca, rng,
                                 current_day=lambda: clock["day"])
    return store, frontend, clock


class TestFrontend:
    def test_profile_served_over_https(self, play, fabric, trust_store, rng):
        store, _, clock = play
        store.record_install_batch("com.mmm.trebelmusic", 1,
                                   InstallSource.ORGANIC, 1234)
        client = make_client(fabric, trust_store, rng)
        response = client.get(PLAY_HOST, "/store/apps/details",
                              params={"id": "com.mmm.trebelmusic"})
        payload = response.json()
        assert payload["installs_floor"] == 1000
        assert payload["crawl_day"] == 7
        assert payload["developer"]["website"] == "https://trebel.example"

    def test_unknown_app_is_404(self, play, fabric, trust_store, rng):
        client = make_client(fabric, trust_store, rng)
        response = client.get(PLAY_HOST, "/store/apps/details",
                              params={"id": "com.ghost"})
        assert response.status == 404

    def test_missing_id_is_400(self, play, fabric, trust_store, rng):
        client = make_client(fabric, trust_store, rng)
        assert client.get(PLAY_HOST, "/store/apps/details").status == 400

    def test_chart_endpoint_tracks_clock(self, play, fabric, trust_store, rng):
        store, _, clock = play
        store.record_engagement("com.mmm.trebelmusic", 7,
                                DailyEngagement(active_users=50))
        client = make_client(fabric, trust_store, rng)
        payload = client.get(PLAY_HOST, "/store/charts/top_free").json()
        assert payload["day"] == 7
        assert payload["entries"][0]["package"] == "com.mmm.trebelmusic"
        clock["day"] = 20  # engagement window has passed
        payload = client.get(PLAY_HOST, "/store/charts/top_free").json()
        assert payload["day"] == 20
        assert payload["entries"] == []

    def test_unknown_chart_is_404(self, play, fabric, trust_store, rng):
        client = make_client(fabric, trust_store, rng)
        assert client.get(PLAY_HOST, "/store/charts/top_paid").status == 404


class TestRateLimiting:
    @pytest.fixture()
    def throttled_play(self, fabric, root_ca, rng):
        store = PlayStore()
        developer = Developer(developer_id="dev1", name="X", country="US")
        store.publish(AppListing(package="com.app.one", title="One",
                                 genre="Tools", developer=developer,
                                 release_day=0))
        clock = {"day": 0}
        frontend = PlayStoreFrontend(fabric, store, root_ca, rng,
                                     current_day=lambda: clock["day"],
                                     hostname="throttled.play.example",
                                     max_requests_per_day=3)
        return frontend, clock

    def test_budget_enforced_per_day(self, throttled_play, fabric,
                                     trust_store, rng):
        frontend, clock = throttled_play
        client = make_client(fabric, trust_store, rng)
        for _ in range(3):
            response = client.get(frontend.hostname, "/store/apps/details",
                                  params={"id": "com.app.one"})
            assert response.ok
        throttled = client.get(frontend.hostname, "/store/apps/details",
                               params={"id": "com.app.one"})
        assert throttled.status == 429

    def test_budget_resets_next_day(self, throttled_play, fabric,
                                    trust_store, rng):
        frontend, clock = throttled_play
        client = make_client(fabric, trust_store, rng)
        for _ in range(4):
            client.get(frontend.hostname, "/store/apps/details",
                       params={"id": "com.app.one"})
        clock["day"] = 1
        response = client.get(frontend.hostname, "/store/apps/details",
                              params={"id": "com.app.one"})
        assert response.ok

    def test_charts_count_against_budget(self, throttled_play, fabric,
                                         trust_store, rng):
        frontend, _ = throttled_play
        client = make_client(fabric, trust_store, rng)
        for _ in range(3):
            assert client.get(frontend.hostname,
                              "/store/charts/top_free").ok
        assert client.get(frontend.hostname,
                          "/store/charts/top_free").status == 429

    def test_crawler_records_throttling_as_failures(self, throttled_play,
                                                    fabric, trust_store, rng):
        from repro.monitor.crawler import PlayStoreCrawler
        frontend, _ = throttled_play
        crawler = PlayStoreCrawler(make_client(fabric, trust_store, rng),
                                   frontend.hostname)
        crawler.crawl_everything(["com.app.one"] * 5)
        assert crawler.failures > 0
        # The snapshots that did land are intact.
        assert crawler.archive.first_profile("com.app.one") is None or \
            crawler.archive.first_profile("com.app.one").installs_floor >= 0

    def test_disabled_by_default(self, fabric, root_ca, trust_store, rng):
        store = PlayStore()
        developer = Developer(developer_id="dev1", name="X", country="US")
        store.publish(AppListing(package="com.app.two", title="Two",
                                 genre="Tools", developer=developer,
                                 release_day=0))
        frontend = PlayStoreFrontend(fabric, store, root_ca, rng,
                                     current_day=lambda: 0,
                                     hostname="open.play.example")
        client = make_client(fabric, trust_store, rng)
        for _ in range(20):
            assert client.get(frontend.hostname, "/store/apps/details",
                              params={"id": "com.app.two"}).ok
