"""Install-count binning tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.playstore.bins import INSTALL_BINS, bin_floor, bin_index, bin_label


class TestBinFloor:
    def test_zero(self):
        assert bin_floor(0) == 0

    def test_exact_edges(self):
        for edge in INSTALL_BINS:
            assert bin_floor(edge) == edge

    def test_between_edges(self):
        assert bin_floor(999) == 500
        assert bin_floor(1_000) == 1_000
        assert bin_floor(1_001) == 1_000
        assert bin_floor(4_999_999) == 1_000_000

    def test_paper_honey_app_case(self):
        # 1,679 purchased installs display as "1,000+" (Section 3).
        assert bin_floor(1_679) == 1_000
        assert bin_label(1_679) == "1,000+"

    def test_enforcement_case(self):
        # "Phonebook - Contacts manager" dropped from 1,000 to 500.
        assert bin_floor(1_050) == 1_000
        assert bin_floor(1_050 - 400) == 500

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bin_floor(-1)

    def test_huge_counts_saturate_top_bin(self):
        assert bin_floor(10 ** 12) == INSTALL_BINS[-1]

    def test_bin_index_monotone(self):
        indices = [bin_index(count) for count in (0, 3, 100, 10 ** 6, 10 ** 10)]
        assert indices == sorted(indices)


@given(st.integers(min_value=0, max_value=10 ** 10))
def test_floor_never_exceeds_count(count):
    assert bin_floor(count) <= count


@given(st.integers(min_value=0, max_value=10 ** 10),
       st.integers(min_value=0, max_value=10 ** 6))
def test_floor_is_monotone(count, delta):
    assert bin_floor(count + delta) >= bin_floor(count)
