"""Crash + resume for the streaming and process-backend wild paths.

Two resume surfaces new to the streaming pipeline, each pinned against
a same-seed uninterrupted run:

* a **streamed** run's checkpoint stores only ``(count, offset)``
  markers for the spilled observation/archive logs; resume truncates
  the spill files back to the checkpointed offsets (the WAL contract)
  and the rest of the run replays byte-identically;
* a ``--backend process`` run's checkpoint embeds every worker
  replica's wire-facing state plus the scheduler's pinning map; resume
  warms a fresh pool from the checkpoint (``adopt_checkpoint``) instead
  of requiring an in-process backend.

Mode mismatches (streamed checkpoint resumed materialised, process
checkpoint resumed in-process, and vice versa) must fail loudly, not
corrupt the run.
"""

import pytest

from repro.core.wild_measurement import WildMeasurement, WildMeasurementConfig
from repro.net.chaos import ChaosScenario
from repro.obs import to_json
from repro.recovery import CrashPlan, RecoveryContext, SimulatedCrash
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World

DAYS = 5
SCALE = 0.04
SEED = 11


def build(profile="off", batch=0, spill_dir=None, backend="thread",
          shards=1):
    chaos = ChaosScenario.profile(profile, seed=7)
    world = World(seed=SEED, chaos=chaos)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=shards, backend=backend,
        batch_devices=batch,
        spill_dir=str(spill_dir) if spill_dir else None))
    return world, measurement


def summarize(world, results):
    return (
        to_json(world.obs),
        results.dataset.offer_count(),
        sorted(results.dataset.unique_packages()),
        [(o.offer_id, o.package, o.country, o.day)
         for o in results.observations],
        results.milk_runs,
        results.crawl_requests,
    )


class TestStreamedResume:
    @pytest.mark.parametrize("profile", ["off", "paper"])
    def test_streamed_crash_resume_equals_plain(self, tmp_path, profile):
        world, measurement = build(
            profile, batch=7, spill_dir=tmp_path / "spill-base")
        base = summarize(world, measurement.run())

        for stage, day in [("wild.day", 2), ("wild.milk", 2),
                           ("wild.checkpoint", 3)]:
            root = tmp_path / f"{stage}-{day}"
            spill = tmp_path / f"spill-{stage}-{day}"
            world, measurement = build(profile, batch=7, spill_dir=spill)
            crashing = RecoveryContext.create(
                root, "wild", crash=CrashPlan.at(stage, day))
            with pytest.raises(SimulatedCrash):
                measurement.run(recovery=crashing)
            # Same spill dir: resume truncates the crashed run's spill
            # files to the checkpointed offsets and appends onward.
            world, measurement = build(profile, batch=7, spill_dir=spill)
            resuming = RecoveryContext.create(root, "wild", resume=True)
            resumed = summarize(world, measurement.run(recovery=resuming))
            assert resumed == base, f"diverged after {stage}:{day}"

    def test_streamed_checkpoint_needs_streamed_resume(self, tmp_path):
        root = tmp_path / "ckpt"
        world, measurement = build(batch=7,
                                   spill_dir=tmp_path / "spill")
        crashing = RecoveryContext.create(
            root, "wild", crash=CrashPlan.at("wild.day", 2))
        with pytest.raises(SimulatedCrash):
            measurement.run(recovery=crashing)
        world, measurement = build(batch=0)  # materialised resume
        resuming = RecoveryContext.create(root, "wild", resume=True)
        with pytest.raises(Exception, match="--batch-devices|spill"):
            measurement.run(recovery=resuming)


class TestProcessBackendResume:
    @pytest.mark.parametrize("profile", ["off", "paper"])
    def test_process_crash_resume_equals_plain(self, tmp_path, profile):
        world, measurement = build(profile, backend="process", shards=2)
        base = summarize(world, measurement.run())

        for stage, day in [("wild.day", 2), ("wild.checkpoint", 3)]:
            root = tmp_path / f"{stage}-{day}"
            world, measurement = build(profile, backend="process",
                                       shards=2)
            crashing = RecoveryContext.create(
                root, "wild", crash=CrashPlan.at(stage, day))
            with pytest.raises(SimulatedCrash):
                measurement.run(recovery=crashing)
            world, measurement = build(profile, backend="process",
                                       shards=2)
            resuming = RecoveryContext.create(root, "wild", resume=True)
            resumed = summarize(world, measurement.run(recovery=resuming))
            assert resumed == base, f"diverged after {stage}:{day}"

    def test_process_checkpoint_rejected_by_in_process_resume(
            self, tmp_path):
        root = tmp_path / "ckpt"
        world, measurement = build(backend="process", shards=2)
        crashing = RecoveryContext.create(
            root, "wild", crash=CrashPlan.at("wild.day", 2))
        with pytest.raises(SimulatedCrash):
            measurement.run(recovery=crashing)
        world, measurement = build(backend="thread")
        resuming = RecoveryContext.create(root, "wild", resume=True)
        with pytest.raises(ValueError, match="process"):
            measurement.run(recovery=resuming)

    def test_in_process_checkpoint_rejected_by_process_resume(
            self, tmp_path):
        root = tmp_path / "ckpt"
        world, measurement = build(backend="thread")
        crashing = RecoveryContext.create(
            root, "wild", crash=CrashPlan.at("wild.day", 2))
        with pytest.raises(SimulatedCrash):
            measurement.run(recovery=crashing)
        world, measurement = build(backend="process", shards=2)
        resuming = RecoveryContext.create(root, "wild", resume=True)
        with pytest.raises(ValueError, match="serial or thread"):
            measurement.run(recovery=resuming)

    def test_streamed_process_crash_resume_equals_plain(self, tmp_path):
        """The full composition: spilled logs + worker replicas + chaos,
        crash mid-run, resume, byte-identical."""
        world, measurement = build(
            "paper", batch=7, spill_dir=tmp_path / "spill-base",
            backend="process", shards=2)
        base = summarize(world, measurement.run())

        root = tmp_path / "ckpt"
        spill = tmp_path / "spill-resume"
        world, measurement = build("paper", batch=7, spill_dir=spill,
                                   backend="process", shards=2)
        crashing = RecoveryContext.create(
            root, "wild", crash=CrashPlan.at("wild.day", 2))
        with pytest.raises(SimulatedCrash):
            measurement.run(recovery=crashing)
        world, measurement = build("paper", batch=7, spill_dir=spill,
                                   backend="process", shards=2)
        resuming = RecoveryContext.create(root, "wild", resume=True)
        resumed = summarize(world, measurement.run(recovery=resuming))
        assert resumed == base
