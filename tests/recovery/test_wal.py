"""Write-ahead log: segment layout, truncation on reopen, replay cap."""

from repro.obs import Observability
from repro.recovery import WriteAheadLog


def records(day, count):
    return [{"day": day, "n": index} for index in range(count)]


class TestSegments:
    def test_append_and_replay_in_write_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for day in (0, 1):
            wal.open_day(day)
            for record in records(day, 3):
                wal.append(record)
        wal.close()
        assert [p.name for p in wal.segments()] == \
            ["day_00000.jsonl", "day_00001.jsonl"]
        assert list(wal.replay(1)) == records(0, 3) + records(1, 3)

    def test_replay_stops_at_through_day(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for day in (0, 1):
            wal.open_day(day)
            wal.append({"day": day})
        wal.close()
        assert list(wal.replay(0)) == [{"day": 0}]

    def test_open_day_truncates_a_partial_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_day(0)
        for record in records(0, 5):
            wal.append(record)
        wal.close()
        # The crashed run's partial day is rewritten from scratch.
        wal.open_day(0)
        wal.append({"day": 0, "n": "fresh"})
        wal.close()
        assert list(wal.replay(0)) == [{"day": 0, "n": "fresh"}]

    def test_limit_caps_total_replayed(self, tmp_path):
        obs = Observability()
        wal = WriteAheadLog(tmp_path, obs=obs)
        wal.open_day(0)
        for record in records(0, 6):
            wal.append(record)
        wal.close()
        assert list(wal.replay(0, limit=4)) == records(0, 4)
        assert obs.metrics.counter_total("recovery.wal_replayed") == 4
