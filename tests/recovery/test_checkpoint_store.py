"""Checkpoint durability: atomic writes, hash stamps, corrupt fallback."""

import json

import pytest

from repro.obs import Observability
from repro.recovery import CheckpointError, CheckpointStore


class TestWriteAndLoad:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path, "wild")
        path = store.write(3, {"cursor": "state"})
        assert path.name == "checkpoint_00003.json"
        assert store.load(path) == (3, {"cursor": "state"})

    def test_no_tmp_file_survives_a_write(self, tmp_path):
        store = CheckpointStore(tmp_path, "wild")
        store.write(0, {"a": 1})
        assert not list(tmp_path.glob("*.tmp"))

    def test_latest_returns_newest_valid(self, tmp_path):
        store = CheckpointStore(tmp_path, "wild")
        store.write(0, {"day": 0})
        store.write(1, {"day": 1})
        assert store.latest() == (1, {"day": 1})

    def test_latest_none_when_empty(self, tmp_path):
        assert CheckpointStore(tmp_path, "wild").latest() is None


class TestValidation:
    def test_bitflip_detected_and_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path, "wild", obs=Observability())
        store.write(0, {"day": 0})
        newest = store.write(1, {"day": 1})
        document = json.loads(newest.read_text())
        document["payload"]["state"]["day"] = 999  # corrupt without restamp
        newest.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="hash mismatch"):
            store.load(newest)
        # latest falls back to the previous day.
        assert store.latest() == (0, {"day": 0})
        assert store.obs.metrics.counter_total(
            "recovery.checkpoints_rejected") >= 1

    def test_truncation_detected(self, tmp_path):
        store = CheckpointStore(tmp_path, "serve")
        path = store.write(0, {"big": list(range(100))})
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError):
            store.load(path)
        assert store.latest() is None

    def test_kind_mismatch_rejected(self, tmp_path):
        CheckpointStore(tmp_path, "wild").write(0, {})
        with pytest.raises(CheckpointError, match="kind mismatch"):
            CheckpointStore(tmp_path, "honey").load(
                tmp_path / "checkpoint_00000.json")
