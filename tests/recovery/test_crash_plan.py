"""Crash plans: kill-point parsing, seq counters, hashed determinism."""

import pytest

from repro.recovery import CrashPlan, SimulatedCrash, parse_kill_point


class TestParseKillPoint:
    def test_two_and_three_part_forms(self):
        assert parse_kill_point("wild.day:3") == ("wild.day", 3, 0)
        assert parse_kill_point("serve.request:1:57") == \
            ("serve.request", 1, 57)

    @pytest.mark.parametrize("bad", ["wild.day", "a:b", ":1", "a:1:2:3"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError, match="bad kill point"):
            parse_kill_point(bad)


class TestExplicitPoints:
    def test_fires_at_the_named_seq_only(self):
        plan = CrashPlan.at("stage", 2, seq=1)
        plan.maybe_crash("stage", 2)  # seq 0: survives
        with pytest.raises(SimulatedCrash) as crashed:
            plan.maybe_crash("stage", 2)  # seq 1: dies
        assert (crashed.value.stage, crashed.value.day,
                crashed.value.seq) == ("stage", 2, 1)

    def test_seq_counters_are_per_stage_and_day(self):
        plan = CrashPlan.at("stage", 1, seq=0)
        plan.maybe_crash("stage", 0)
        plan.maybe_crash("other", 1)
        with pytest.raises(SimulatedCrash):
            plan.maybe_crash("stage", 1)

    def test_disabled_plan_never_counts(self):
        plan = CrashPlan()
        for _ in range(3):
            plan.maybe_crash("stage", 0)
        # A disabled plan tracks no seq state: attaching points later
        # still sees a fresh counter (the resumed-run contract).
        assert plan._seq == {}


class TestHashedRate:
    def test_same_seed_same_schedule(self):
        def survivors(seed):
            plan = CrashPlan(seed=seed, rate=0.5)
            alive = []
            for day in range(30):
                try:
                    plan.maybe_crash("stage", day)
                    alive.append(day)
                except SimulatedCrash:
                    pass
            return alive

        assert survivors(7) == survivors(7)
        assert survivors(7) != survivors(8)

    def test_rate_zero_never_fires(self):
        plan = CrashPlan(seed=1, rate=0.0)
        for day in range(50):
            plan.maybe_crash("stage", day)
