"""Crash + resume produces byte-identical outputs for every pipeline.

The contract under test (ISSUE 7's tentpole invariant): crash at any
injected kill point, resume from the newest checkpoint, and the final
reports, flagged sets, and observability exports equal a same-seed
uninterrupted run's, byte for byte.

Wild and serve hold the strongest form — plain run == recovery run ==
crash+resume.  Honey's recovery mode serialises the campaign batches at
quiescent barriers (the historical schedule runs them as one concurrent
batch), which repositions trace-span coordinates without changing any
aggregate; its identity baseline is therefore the *clean recovery* run,
while every aggregate (report, flagged set, metric totals, total ops)
is additionally pinned against the plain run.  ``DESIGN.md`` documents
the trade-off.
"""

import json

import pytest

from repro.core.honey_experiment import HoneyAppExperiment
from repro.core.wild_measurement import WildMeasurement, WildMeasurementConfig
from repro.core import reports
from repro.detection.live import HONEY_DETECTOR_CONFIG
from repro.net.chaos import ChaosScenario
from repro.obs import Observability, to_json
from repro.recovery import CrashPlan, RecoveryContext, SimulatedCrash
from repro.serve.runner import ServeRunConfig, run_serve
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World


class TestWildResume:
    DAYS = 5

    def build(self, profile):
        chaos = ChaosScenario.profile(profile, seed=7)
        world = World(seed=11, chaos=chaos)
        scenario = WildScenario(world, WildScenarioConfig(
            scale=0.04, measurement_days=self.DAYS))
        scenario.build()
        detection = world.detection_hook("wild")
        measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
            measurement_days=self.DAYS, shards=1), detection=detection)
        return world, measurement, detection

    def summarize(self, world, results, detection):
        return (
            to_json(world.obs),
            results.dataset.offer_count(),
            sorted(results.dataset.unique_packages()),
            results.milk_runs,
            results.crawl_requests,
            sorted(detection.finalize()),
        )

    @pytest.mark.parametrize("profile", ["off", "paper"])
    def test_crash_resume_equals_plain(self, tmp_path, profile):
        world, measurement, detection = self.build(profile)
        base = self.summarize(world, measurement.run(), detection)

        for stage, day in [("wild.day", 2), ("wild.milk", 2),
                           ("wild.checkpoint", 3)]:
            root = tmp_path / f"{stage}-{day}"
            world, measurement, detection = self.build(profile)
            crashing = RecoveryContext.create(
                root, "wild", crash=CrashPlan.at(stage, day))
            with pytest.raises(SimulatedCrash):
                measurement.run(recovery=crashing)
            world, measurement, detection = self.build(profile)
            resuming = RecoveryContext.create(root, "wild", resume=True)
            resumed = self.summarize(
                world, measurement.run(recovery=resuming), detection)
            assert resumed == base, f"diverged after {stage}:{day}"


class TestHoneyResume:
    def build(self, profile):
        chaos = ChaosScenario.profile(profile, seed=7)
        world = World(seed=11, chaos=chaos)
        hook = world.detection_hook("honey", config=HONEY_DETECTOR_CONFIG)
        experiment = HoneyAppExperiment(world, installs_per_iip=40,
                                        shards=1, detection=hook)
        return world, experiment, hook

    def summarize(self, world, results, hook):
        return (
            to_json(world.obs),
            reports.render_honey_report(results),
            sorted(hook.finalize()),
        )

    @pytest.mark.parametrize("profile", ["off", "paper"])
    def test_crash_resume_equals_clean_recovery(self, tmp_path, profile):
        plain_world, experiment, hook = self.build(profile)
        plain = self.summarize(plain_world, experiment.run(), hook)

        clean_root = tmp_path / "clean"
        world, experiment, hook = self.build(profile)
        clean = self.summarize(
            world,
            experiment.run(recovery=RecoveryContext.create(
                clean_root, "honey")),
            hook)
        # Aggregates match the plain concurrent schedule exactly; only
        # trace-span coordinates may differ (quiescent barriers).
        assert clean[1:] == plain[1:]
        assert world.obs.metrics.snapshot() == \
            plain_world.obs.metrics.snapshot()
        assert world.obs.ops.value == plain_world.obs.ops.value

        for stage, index in [("honey.campaign", 1),
                             ("honey.checkpoint", 0)]:
            root = tmp_path / f"{stage}-{index}"
            world, experiment, hook = self.build(profile)
            crashing = RecoveryContext.create(
                root, "honey", crash=CrashPlan.at(stage, index))
            with pytest.raises(SimulatedCrash):
                experiment.run(recovery=crashing)
            world, experiment, hook = self.build(profile)
            resuming = RecoveryContext.create(root, "honey", resume=True)
            resumed = self.summarize(
                world, experiment.run(recovery=resuming), hook)
            assert resumed == clean, f"diverged after {stage}:{index}"


class TestServeResume:
    CONFIG = dict(seed=2019, days=2, clients=3, scale=0.05,
                  requests_per_client_day=60.0)

    def run_once(self, profile, recovery=None):
        config = ServeRunConfig(chaos_profile=profile, **self.CONFIG)
        result = run_serve(config, obs=Observability(), recovery=recovery)
        return (
            json.dumps(result.report, sort_keys=True),
            result.flagged_dump(),
            json.dumps(result.obs.snapshot(), sort_keys=True, default=repr),
        )

    @pytest.mark.parametrize("profile", ["off", "paper"])
    def test_crash_resume_equals_plain(self, tmp_path, profile):
        base = self.run_once(profile)

        clean = self.run_once(profile, RecoveryContext.create(
            tmp_path / "clean", "serve", with_wal=True))
        assert clean == base

        for stage, day, seq in [("serve.day", 1, 0),
                                ("serve.checkpoint", 0, 0),
                                ("serve.request", 1, 11)]:
            root = tmp_path / f"{stage}-{day}-{seq}"
            crashing = RecoveryContext.create(
                root, "serve", crash=CrashPlan.at(stage, day, seq=seq),
                with_wal=True)
            with pytest.raises(SimulatedCrash):
                self.run_once(profile, crashing)
            resuming = RecoveryContext.create(root, "serve", resume=True,
                                              with_wal=True)
            resumed = self.run_once(profile, resuming)
            assert resumed == base, f"diverged after {stage}:{day}:{seq}"

    def test_recovery_counters_stay_out_of_the_pipeline_export(self,
                                                               tmp_path):
        recovery = RecoveryContext.create(tmp_path, "serve", with_wal=True)
        report = self.run_once("off", recovery)
        assert "recovery." not in report[2]
        recovery.export_metrics()
        exported = (tmp_path / "recovery_metrics.json").read_text()
        assert "recovery.checkpoints_written" in exported
