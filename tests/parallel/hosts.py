"""Spawn-importable worker hosts for the process-backend tests.

These live in a real module (not a test function) because the spawn
context bootstraps workers by importing ``module:callable`` from a
:class:`~repro.parallel.procpool.WorkerHostSpec` — a closure defined
inside a test cannot cross the process boundary.
"""

from __future__ import annotations


class ArithmeticHost:
    """Squares task payloads; state advances only via broadcasts."""

    def __init__(self, bias: int = 0) -> None:
        self.bias = bias
        self.day = 0

    def on_broadcast(self, payload) -> None:
        kind = payload[0]
        if kind == "day":
            self.day = int(payload[1])
            return
        if kind == "explode":
            raise RuntimeError("broadcast exploded")
        raise ValueError(f"unknown broadcast {kind!r}")

    def run_task(self, payload):
        kind, value = payload
        if kind == "boom":
            raise KeyError(f"task exploded on {value}")
        return value * value + self.bias + self.day


def build_host(bias: int = 0) -> ArithmeticHost:
    return ArithmeticHost(bias=bias)


def broken_factory() -> ArithmeticHost:
    raise RuntimeError("factory cannot build a host")
