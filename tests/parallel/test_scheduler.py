"""The shard scheduler's determinism contract.

Sharded pipelines only stay byte-identical to serial ones if (a) shard
assignment is a pure function of the key, (b) results come back in
input order no matter which thread produced them, and (c) tasks that
share a key serialise in input order.  These tests pin each leg.
"""

import threading
import time

import pytest

from repro.parallel import (
    ShardScheduler,
    current_flow,
    derive_rng,
    derive_seed,
    flow_scope,
    stable_hash,
)


class TestStableHash:
    def test_is_deterministic(self):
        assert stable_hash("a", 1, None) == stable_hash("a", 1, None)

    def test_differs_by_part(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("a", 1) != stable_hash("b", 1)

    def test_known_value_pinned(self):
        # Guards against anyone "improving" the hash: a new scheme would
        # silently reshuffle every shard assignment and RNG stream.
        import hashlib
        digest = hashlib.sha256(b"x:1").digest()
        assert stable_hash("x", 1) == int.from_bytes(digest[:8], "big")

    def test_derive_rng_streams_are_stable_and_independent(self):
        a1 = derive_rng(7, "crawl", "com.app", 3)
        a2 = derive_rng(7, "crawl", "com.app", 3)
        b = derive_rng(7, "crawl", "com.other", 3)
        draws_a1 = [a1.random() for _ in range(5)]
        assert draws_a1 == [a2.random() for _ in range(5)]
        assert draws_a1 != [b.random() for _ in range(5)]

    def test_derive_seed_matches_rng(self):
        seed = derive_seed("k")
        import random
        assert random.Random(seed).random() == derive_rng("k").random()


class TestShardAssignment:
    def test_shard_of_is_stable(self):
        scheduler = ShardScheduler(4)
        assert scheduler.shard_of("US") == scheduler.shard_of("US")
        assert 0 <= scheduler.shard_of("US") < 4

    def test_salt_changes_assignment_space(self):
        scheduler = ShardScheduler(64)
        spread = {scheduler.shard_of("US", salt=f"day:{d}")
                  for d in range(32)}
        assert len(spread) > 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardScheduler(0)


class TestRun:
    def test_results_in_input_order(self):
        scheduler = ShardScheduler(4)
        tasks = [(f"k{i}", (lambda i=i: i * i)) for i in range(50)]
        assert scheduler.run(tasks) == [i * i for i in range(50)]

    def test_serial_fallback_matches_sharded(self):
        tasks = lambda: [(f"k{i}", (lambda i=i: i + 100)) for i in range(20)]
        assert ShardScheduler(1).run(tasks()) == ShardScheduler(5).run(tasks())

    def test_same_key_serialises_in_input_order(self):
        # All tasks share one key, hence one bucket and one thread: the
        # append order must be the input order even with 8 shards.
        seen = []
        tasks = [("US", (lambda i=i: seen.append(i))) for i in range(30)]
        ShardScheduler(8).run(tasks)
        assert seen == list(range(30))

    def test_distinct_keys_run_concurrently(self):
        # Two tasks in different buckets must overlap: the first blocks
        # until the second has started, which only works off-thread.
        started = threading.Event()
        scheduler = ShardScheduler(8)
        key_a, key_b = "a", "b"
        assert scheduler.shard_of(key_a) != scheduler.shard_of(key_b)

        def waiter():
            assert started.wait(timeout=5.0)
            return "waited"

        def starter():
            started.set()
            return "started"

        assert scheduler.run([(key_a, waiter), (key_b, starter)]) == \
            ["waited", "started"]

    def test_exception_propagates_after_drain(self):
        finished = []

        def boom():
            raise RuntimeError("shard died")

        tasks = [("a", boom), ("b", lambda: finished.append(1))]
        with pytest.raises(RuntimeError, match="shard died"):
            ShardScheduler(8).run(tasks)
        assert finished == [1]

    def test_empty_and_single(self):
        assert ShardScheduler(4).run([]) == []
        assert ShardScheduler(4).run([("k", lambda: 9)]) == [9]

    def test_two_failing_buckets_raise_lowest_input_index(self):
        # Both buckets fail; the raised exception must be the one from
        # the lowest task input index — deterministically, even though
        # the higher-index bucket finishes (and fails) first — with the
        # other bucket's failure chained on via __context__.
        scheduler = ShardScheduler(8)
        assert scheduler.shard_of("a") != scheduler.shard_of("b")

        def slow_boom():
            time.sleep(0.05)
            raise RuntimeError("first by input index")

        def fast_boom():
            raise KeyError("second by input index")

        with pytest.raises(RuntimeError,
                           match="first by input index") as excinfo:
            scheduler.run([("a", slow_boom), ("b", fast_boom)])
        chained = excinfo.value.__context__
        assert isinstance(chained, KeyError)
        assert "second by input index" in str(chained)

    def test_shard_of_is_memoised_per_scheduler(self):
        # Keys repeat run after run (same countries, same packages), so
        # the stable hash is computed once per distinct (salt, key).
        scheduler = ShardScheduler(4)
        first = scheduler.shard_of("US", salt="day:0")
        assert ("day:0", "US") in scheduler._shard_cache
        scheduler._shard_cache[("day:0", "US")] = (first + 1) % 4
        assert scheduler.shard_of("US", salt="day:0") == (first + 1) % 4


class TestFlowScope:
    def test_default_is_empty(self):
        assert current_flow() == ""

    def test_scope_sets_and_restores(self):
        with flow_scope("milk:0:US:com.app"):
            assert current_flow() == "milk:0:US:com.app"
            with flow_scope("inner"):
                assert current_flow() == "inner"
            assert current_flow() == "milk:0:US:com.app"
        assert current_flow() == ""

    def test_flows_are_thread_local(self):
        observed = {}

        def task(name):
            def run():
                with flow_scope(name):
                    time.sleep(0.01)
                    observed[name] = current_flow()
            return run

        ShardScheduler(4).run([("a", task("flow-a")), ("b", task("flow-b"))])
        assert observed == {"flow-a": "flow-a", "flow-b": "flow-b"}
