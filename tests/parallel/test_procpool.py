"""The process worker pool and the scheduler's process backend.

End-to-end pipeline equivalence is pinned by the integration backend
matrix; these tests pin the plumbing: payloads route to pinned workers
and come back in input order, broadcasts advance worker state, and
failures (task, broadcast, bootstrap) cross the process boundary as
clean :class:`WorkerTaskError` values at deterministic input indexes.
"""

import pytest

from repro.parallel import ShardScheduler
from repro.parallel.procpool import WorkerHostSpec, WorkerTaskError

HOST = WorkerHostSpec(factory="tests.parallel.hosts:build_host")
BIASED = WorkerHostSpec(factory="tests.parallel.hosts:build_host",
                        config={"bias": 7})
BROKEN = WorkerHostSpec(factory="tests.parallel.hosts:broken_factory")


def scheduler(shards=4, spec=HOST, workers=None):
    return ShardScheduler(shards, backend="process", worker_host=spec,
                          workers=workers)


def local_square(payload):
    return payload[1] * payload[1]


class TestProcessBackend:
    def test_results_in_input_order(self):
        sched = scheduler()
        try:
            specs = [(f"k{i}", ("square", i)) for i in range(12)]
            assert (sched.run_specs(specs, local_square)
                    == [i * i for i in range(12)])
        finally:
            sched.close()

    def test_worker_count_never_exceeds_cores_by_default(self):
        import os
        sched = ShardScheduler(64, backend="process", worker_host=HOST)
        assert sched.workers == min(64, os.cpu_count() or 1)

    def test_explicit_worker_count_is_honoured(self):
        sched = scheduler(shards=8, workers=2)
        try:
            specs = [(f"k{i}", ("square", i)) for i in range(8)]
            assert sched.workers == 2
            assert (sched.run_specs(specs, local_square)
                    == [i * i for i in range(8)])
        finally:
            sched.close()

    def test_host_config_reaches_the_worker(self):
        sched = scheduler(spec=BIASED, workers=1)
        try:
            assert sched.run_specs([("k", ("square", 3))],
                                   local_square) == [16]
        finally:
            sched.close()

    def test_broadcast_advances_worker_state(self):
        sched = scheduler(workers=1)
        try:
            sched.broadcast(("day", 100))
            assert sched.run_specs([("k", ("square", 2))],
                                   local_square) == [104]
        finally:
            sched.close()

    def test_worker_raise_propagates_cleanly(self):
        # The exception crosses the boundary as a WorkerTaskError that
        # names the original type and message; the healthy tasks in
        # other batches still complete.
        sched = scheduler(workers=2)
        try:
            specs = [("a", ("square", 1)), ("b", ("boom", 5)),
                     ("a", ("square", 2))]
            with pytest.raises(WorkerTaskError,
                               match="KeyError.*task exploded on 5"):
                sched.run_specs(specs, local_square)
        finally:
            sched.close()

    def test_two_failing_workers_raise_lowest_index_and_chain(self):
        sched = scheduler(workers=2)
        try:
            # Keys pin round-robin in first-seen order, so "a" and "b"
            # land on different workers; both batches fail.
            specs = [("a", ("boom", 1)), ("b", ("boom", 2))]
            with pytest.raises(WorkerTaskError,
                               match="task exploded on 1") as excinfo:
                sched.run_specs(specs, local_square)
            chained = excinfo.value.__context__
            assert isinstance(chained, WorkerTaskError)
            assert "task exploded on 2" in str(chained)
        finally:
            sched.close()

    def test_broadcast_failure_surfaces_on_next_batch(self):
        sched = scheduler(workers=1)
        try:
            sched.broadcast(("explode",))
            with pytest.raises(WorkerTaskError,
                               match="broadcast exploded"):
                sched.run_specs([("k", ("square", 1))], local_square)
        finally:
            sched.close()

    def test_bootstrap_failure_is_reported(self):
        with pytest.raises(WorkerTaskError,
                           match="factory cannot build a host"):
            sched = scheduler(spec=BROKEN, workers=1)
            try:
                sched.run_specs([("k", ("square", 1))], local_square)
            finally:
                sched.close()

    def test_closures_are_rejected(self):
        sched = scheduler()
        with pytest.raises(ValueError, match="cannot run closures"):
            sched.run([("k", lambda: 1)])

    def test_process_backend_requires_worker_host(self):
        with pytest.raises(ValueError, match="worker_host"):
            ShardScheduler(4, backend="process")
