"""TLS layer tests: certificates, trust, handshake, records, pinning."""

import random

import pytest

from repro.net.errors import (
    CertificatePinningError,
    CertificateVerificationError,
    TlsError,
)
from repro.net.fabric import PacketCapture
from repro.net.http import HttpRequest
from repro.net.tls import (
    Certificate,
    CertificateAuthority,
    TlsClientSession,
    TrustStore,
    is_handshake_bytes,
    is_record_bytes,
    issue_server_identity,
)
from tests.conftest import make_client, make_https_server


class TestCertificates:
    def setup_method(self):
        self.rng = random.Random(3)
        self.ca = CertificateAuthority("Root", self.rng)

    def test_self_certificate_is_self_signed(self):
        cert = self.ca.self_certificate()
        assert cert.is_self_signed
        assert cert.subject == "Root"

    def test_issue_increments_serials(self):
        identity_a = issue_server_identity(self.ca, "a.example", self.rng)
        identity_b = issue_server_identity(self.ca, "b.example", self.rng)
        assert identity_a.leaf.serial != identity_b.leaf.serial

    def test_json_round_trip(self):
        cert = self.ca.self_certificate()
        assert Certificate.from_json(cert.to_json()) == cert

    def test_malformed_json_rejected(self):
        with pytest.raises(TlsError):
            Certificate.from_json({"subject": "x"})


class TestTrustStore:
    def setup_method(self):
        self.rng = random.Random(4)
        self.ca = CertificateAuthority("Root", self.rng)
        self.store = TrustStore()
        self.store.add_root(self.ca.self_certificate())

    def test_valid_chain_accepted(self):
        identity = issue_server_identity(self.ca, "srv.example", self.rng)
        leaf = self.store.verify_chain(identity.chain, "srv.example", today=5)
        assert leaf.subject == "srv.example"

    def test_name_mismatch_rejected(self):
        identity = issue_server_identity(self.ca, "srv.example", self.rng)
        with pytest.raises(CertificateVerificationError, match="mismatch"):
            self.store.verify_chain(identity.chain, "other.example", today=5)

    def test_expired_certificate_rejected(self):
        identity = issue_server_identity(self.ca, "srv.example", self.rng,
                                         not_before=0, not_after=10)
        with pytest.raises(CertificateVerificationError, match="not valid"):
            self.store.verify_chain(identity.chain, "srv.example", today=11)

    def test_untrusted_issuer_rejected(self):
        rogue = CertificateAuthority("Rogue", self.rng)
        identity = issue_server_identity(rogue, "srv.example", self.rng)
        with pytest.raises(CertificateVerificationError, match="untrusted"):
            self.store.verify_chain(identity.chain, "srv.example", today=5)

    def test_tampered_signature_rejected(self):
        identity = issue_server_identity(self.ca, "srv.example", self.rng)
        leaf = identity.chain[0]
        forged = Certificate(
            subject=leaf.subject, public_key=leaf.public_key,
            issuer=leaf.issuer, serial=leaf.serial,
            not_before=leaf.not_before, not_after=leaf.not_after,
            signature=leaf.signature ^ 1)
        with pytest.raises(CertificateVerificationError, match="signature"):
            self.store.verify_chain([forged], "srv.example", today=5)

    def test_empty_chain_rejected(self):
        with pytest.raises(CertificateVerificationError, match="empty"):
            self.store.verify_chain([], "srv.example", today=0)

    def test_non_root_cannot_be_added(self):
        identity = issue_server_identity(self.ca, "srv.example", self.rng)
        with pytest.raises(ValueError):
            self.store.add_root(identity.leaf)

    def test_remove_root(self):
        self.store.remove_root("Root")
        identity = issue_server_identity(self.ca, "srv.example", self.rng)
        with pytest.raises(CertificateVerificationError):
            self.store.verify_chain(identity.chain, "srv.example", today=5)


class TestHandshakeEndToEnd:
    def test_https_request_works(self, fabric, root_ca, trust_store, rng,
                                 https_server, client):
        response = client.get("api.example.com", "/json", params={"a": "1"})
        assert response.ok
        assert response.json()["query"] == {"a": "1"}

    def test_client_without_root_fails(self, fabric, root_ca, rng, https_server):
        empty_store = TrustStore()
        client = make_client(fabric, empty_store, rng)
        with pytest.raises(CertificateVerificationError):
            client.get("api.example.com", "/json")

    def test_pinned_wrong_key_fails(self, fabric, root_ca, trust_store, rng,
                                    https_server):
        pins = {"api.example.com": "0" * 64}
        client = make_client(fabric, trust_store, rng, pins=pins)
        with pytest.raises(CertificatePinningError):
            client.get("api.example.com", "/json")

    def test_pinned_correct_key_succeeds(self, fabric, root_ca, trust_store,
                                         rng, https_server):
        pins = {"api.example.com": https_server.identity.leaf.fingerprint()}
        client = make_client(fabric, trust_store, rng, pins=pins)
        assert client.get("api.example.com", "/json").ok

    def test_no_plaintext_on_wire(self, fabric, root_ca, trust_store, rng,
                                  https_server):
        capture = PacketCapture(fabric)
        client = make_client(fabric, trust_store, rng)
        client.post_json("api.example.com", "/echo", {"secret": "hunter2"})
        for payload in capture.payloads_to("api.example.com"):
            assert b"hunter2" not in payload
            assert is_handshake_bytes(payload) or is_record_bytes(payload)

    def test_record_replay_rejected(self, fabric, root_ca, trust_store, rng,
                                    https_server):
        # Handshake normally, then replay the first sealed record.
        asn = fabric.asn_db.eyeball_asns()[0]
        address = fabric.asn_db.allocate(asn.number, rng)
        from repro.net.fabric import Endpoint
        connection = fabric.connect(Endpoint(address=address),
                                    "api.example.com", 443)
        session = TlsClientSession(connection, "api.example.com",
                                   trust_store, rng)
        request = HttpRequest.get("/json", "api.example.com")
        sealed = session._codec.seal(request.to_bytes())
        connection.roundtrip(sealed)
        with pytest.raises(TlsError, match="replay|MAC"):
            connection.roundtrip(sealed)
