"""HAR export tests, fed by real intercepted traffic."""

import json

import pytest

from repro.net.har import exchanges_to_har, load_har, save_har
from repro.net.proxy import MitmProxy
from repro.net.tls import TrustStore
from tests.conftest import make_client


@pytest.fixture()
def intercepted(fabric, root_ca, trust_store, rng, https_server):
    address = fabric.asn_db.allocate(14061, rng)
    mitm = MitmProxy(fabric, "har.mitm.example", address, rng,
                     upstream_trust=trust_store)
    victim = TrustStore()
    victim.add_root(root_ca.self_certificate())
    victim.add_root(mitm.ca_certificate())
    client = make_client(fabric, victim, rng,
                         proxy=(mitm.hostname, mitm.port))
    client.get("api.example.com", "/json", params={"country": "US"})
    client.post_json("api.example.com", "/echo", {"k": "v"})
    return mitm.intercepted


class TestHarExport:
    def test_document_shape(self, intercepted):
        document = exchanges_to_har(intercepted, day=7)
        log = document["log"]
        assert log["version"] == "1.2"
        assert len(log["entries"]) == 2
        entry = log["entries"][0]
        assert entry["_simulationDay"] == 7
        assert entry["request"]["method"] == "GET"
        assert entry["request"]["url"].startswith(
            "https://api.example.com:443/json")
        assert entry["response"]["status"] == 200

    def test_query_string_decomposed(self, intercepted):
        entry = exchanges_to_har(intercepted)["log"]["entries"][0]
        assert {"name": "country", "value": "US"} in entry["request"]["queryString"]

    def test_response_body_is_readable_text(self, intercepted):
        entry = exchanges_to_har(intercepted)["log"]["entries"][0]
        body = json.loads(entry["response"]["content"]["text"])
        assert body["query"] == {"country": "US"}

    def test_save_and_load_round_trip(self, intercepted, tmp_path):
        path = tmp_path / "flows.har"
        count = save_har(intercepted, path, day=3)
        assert count == 2
        document = load_har(path)
        assert len(document["log"]["entries"]) == 2

    def test_load_rejects_non_har(self, tmp_path):
        path = tmp_path / "x.har"
        path.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="not a HAR"):
            load_har(path)

    def test_empty_exchange_list(self, tmp_path):
        path = tmp_path / "empty.har"
        assert save_har([], path) == 0
        assert load_har(path)["log"]["entries"] == []
