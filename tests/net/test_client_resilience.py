"""Retry policy + circuit breaker on the HTTP client."""

from __future__ import annotations

import pytest

from repro.net.client import (
    RETRIABLE_STATUSES,
    CircuitBreaker,
    HttpClient,
    RetryPolicy,
)
from repro.net.errors import (
    CircuitOpenError,
    ConnectionRefusedFabricError,
    TransientNetworkError,
)
from repro.net.fabric import Endpoint
from repro.net.http import HttpResponse
from repro.obs import Observability

from tests.conftest import make_client, make_https_server

pytestmark = pytest.mark.chaos

HOST = "api.example.com"


@pytest.fixture()
def obs():
    return Observability()


def make_retry_client(fabric, trust_store, rng, obs, **kwargs):
    client = make_client(fabric, trust_store, rng)
    client.obs = obs
    client.retry_policy = kwargs.pop("retry_policy", RetryPolicy())
    breaker = kwargs.pop("breaker", None)
    if breaker is not None:
        client.breaker = breaker
        if breaker.obs is None:
            breaker.obs = obs
    assert not kwargs
    return client


# -- RetryPolicy decisions ---------------------------------------------------


def test_policy_rejects_bad_config():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_ops=-1)


def test_policy_classifies_errors():
    policy = RetryPolicy()
    assert policy.retriable_error(TransientNetworkError("reset"))
    assert policy.retriable_error(ConnectionRefusedFabricError("down"))
    assert not policy.retriable_error(CircuitOpenError("open"))
    assert not policy.retriable_error(ValueError("not a net error"))
    for status in RETRIABLE_STATUSES:
        assert policy.retriable_status(status)
    assert not policy.retriable_status(404)


# -- retries over a real server ----------------------------------------------


def test_retry_recovers_from_transient_connect_failure(
        fabric, root_ca, trust_store, rng, obs):
    make_https_server(fabric, root_ca, rng, hostname=HOST)
    client = make_retry_client(fabric, trust_store, rng, obs)

    def fail_once():
        fabric.clear_fault(HOST, 443)  # heal after the first raise
        return TransientNetworkError("reset")

    fabric.inject_fault(HOST, 443, fail_once)
    response = client.get(HOST, "/json")
    assert response.ok
    metrics = obs.metrics
    assert metrics.counter_value("net.client.retries", host=HOST) == 1
    assert metrics.counter_value("net.client.request_failures", host=HOST,
                                 error="TransientNetworkError") == 1
    assert metrics.counter_total("net.client.gave_up") == 0


def test_retry_exhaustion_raises_and_counts_gave_up(
        fabric, root_ca, trust_store, rng, obs):
    make_https_server(fabric, root_ca, rng, hostname=HOST)
    client = make_retry_client(fabric, trust_store, rng, obs,
                               retry_policy=RetryPolicy(max_attempts=3))
    fabric.inject_fault(HOST, 443, TransientNetworkError("reset"))
    with pytest.raises(TransientNetworkError):
        client.get(HOST, "/json")
    metrics = obs.metrics
    assert metrics.counter_value("net.client.retries", host=HOST) == 2
    assert metrics.counter_value("net.client.request_failures", host=HOST,
                                 error="TransientNetworkError") == 3
    assert metrics.counter_value("net.client.gave_up", host=HOST) == 1


def test_failures_counted_even_without_policy(
        fabric, root_ca, trust_store, rng, obs):
    """Regression: the client used to record metrics only on success."""
    make_https_server(fabric, root_ca, rng, hostname=HOST)
    client = make_client(fabric, trust_store, rng)
    client.obs = obs
    fabric.inject_fault(HOST, 443, TransientNetworkError("reset"))
    with pytest.raises(TransientNetworkError):
        client.get(HOST, "/json")
    assert obs.metrics.counter_value(
        "net.client.request_failures", host=HOST,
        error="TransientNetworkError") == 1


def test_retriable_status_retried_then_returned(
        fabric, root_ca, trust_store, rng, obs):
    server = make_https_server(fabric, root_ca, rng, hostname=HOST)
    hits = []

    def flaky(request, context):
        hits.append(1)
        if len(hits) < 3:
            return HttpResponse.error(503, "warming up")
        return HttpResponse.json_response({"ok": True})

    server.router.get("/flaky", flaky)
    client = make_retry_client(fabric, trust_store, rng, obs,
                               retry_policy=RetryPolicy(max_attempts=3))
    response = client.get(HOST, "/flaky")
    assert response.ok and len(hits) == 3
    assert obs.metrics.counter_value("net.client.retried_statuses",
                                     host=HOST, status="503") == 2


def test_retriable_status_exhaustion_returns_last_response(
        fabric, root_ca, trust_store, rng, obs):
    server = make_https_server(fabric, root_ca, rng, hostname=HOST)
    server.router.get("/limited",
                      lambda request, context: HttpResponse.error(429, "slow"))
    client = make_retry_client(fabric, trust_store, rng, obs,
                               retry_policy=RetryPolicy(max_attempts=2))
    response = client.get(HOST, "/limited")
    assert response.status == 429
    assert obs.metrics.counter_value("net.client.gave_up", host=HOST) == 1


def test_backoff_charged_in_op_ticks(fabric, root_ca, trust_store, rng, obs):
    make_https_server(fabric, root_ca, rng, hostname=HOST)
    client = make_retry_client(
        fabric, trust_store, rng, obs,
        retry_policy=RetryPolicy(max_attempts=3, backoff_ops=4))
    fabric.inject_fault(HOST, 443, TransientNetworkError("reset"))
    with pytest.raises(TransientNetworkError):
        client.get(HOST, "/json")
    # attempt 1 charges 4 ops, attempt 2 charges 8.
    assert obs.metrics.counter_total("net.client.backoff_ops") == 12


def test_404_is_not_retried(fabric, root_ca, trust_store, rng, obs):
    server = make_https_server(fabric, root_ca, rng, hostname=HOST)
    hits = []

    def missing(request, context):
        hits.append(1)
        return HttpResponse.error(404, "no such app")

    server.router.get("/missing", missing)
    client = make_retry_client(fabric, trust_store, rng, obs)
    response = client.get(HOST, "/missing")
    assert response.status == 404 and len(hits) == 1


# -- circuit breaker ---------------------------------------------------------


def test_breaker_opens_after_threshold():
    breaker = CircuitBreaker(failure_threshold=3, recovery_ops=100)
    for _ in range(3):
        breaker.allow(HOST)
        breaker.record_failure(HOST)
    assert breaker.is_open(HOST)
    with pytest.raises(CircuitOpenError):
        breaker.allow(HOST)


def test_breaker_half_opens_then_closes_on_probe_success():
    breaker = CircuitBreaker(failure_threshold=1, recovery_ops=3)
    breaker.allow(HOST)
    breaker.record_failure(HOST)
    with pytest.raises(CircuitOpenError):
        breaker.allow(HOST)
    # Burn the recovery window on the internal op clock.
    for _ in range(3):
        try:
            breaker.allow(HOST)
        except CircuitOpenError:
            pass
        else:
            break
    breaker.record_success(HOST)
    assert not breaker.is_open(HOST)
    breaker.allow(HOST)  # closed again: no raise


def test_breaker_reopens_on_failed_probe():
    breaker = CircuitBreaker(failure_threshold=1, recovery_ops=2)
    breaker.allow(HOST)
    breaker.record_failure(HOST)
    probed = False
    for _ in range(10):
        try:
            breaker.allow(HOST)
        except CircuitOpenError:
            continue
        probed = True
        break
    assert probed
    breaker.record_failure(HOST)  # probe failed
    assert breaker.is_open(HOST)
    with pytest.raises(CircuitOpenError):
        breaker.allow(HOST)


def test_breaker_quarantines_host_on_client(
        fabric, root_ca, trust_store, rng, obs):
    make_https_server(fabric, root_ca, rng, hostname=HOST)
    breaker = CircuitBreaker(failure_threshold=2, recovery_ops=10_000)
    client = make_retry_client(fabric, trust_store, rng, obs,
                               retry_policy=RetryPolicy(max_attempts=2),
                               breaker=breaker)
    fabric.inject_fault(HOST, 443, TransientNetworkError("reset"))
    with pytest.raises(TransientNetworkError):
        client.get(HOST, "/json")
    # Both attempts failed -> threshold reached -> circuit open.
    with pytest.raises(CircuitOpenError):
        client.get(HOST, "/json")
    metrics = obs.metrics
    assert metrics.counter_value("net.client.circuit_opened", host=HOST) == 1
    assert metrics.counter_value("net.client.circuit_rejected",
                                 host=HOST) >= 1
    # The open circuit never touched the network again.
    assert metrics.counter_value("net.client.request_failures", host=HOST,
                                 error="TransientNetworkError") == 2


def test_breaker_is_per_host(fabric, root_ca, trust_store, rng, obs):
    make_https_server(fabric, root_ca, rng, hostname=HOST)
    other = "other.example.com"
    make_https_server(fabric, root_ca, rng, hostname=other)
    breaker = CircuitBreaker(failure_threshold=1, recovery_ops=10_000)
    client = make_retry_client(fabric, trust_store, rng, obs,
                               retry_policy=None, breaker=breaker)
    fabric.inject_fault(HOST, 443, TransientNetworkError("reset"))
    with pytest.raises(TransientNetworkError):
        client.get(HOST, "/json")
    assert breaker.is_open(HOST)
    assert client.get(other, "/json").ok
