"""TLS session resumption: cache hits, invalidation, and determinism.

A client wired with a :class:`TlsSessionCache` full-handshakes once per
``(host, day, flow)`` and resumes afterwards; the cache must flush on
day rollover, connection faults, breaker opens, and unknown tickets —
and turning resumption on must never change HTTP payload bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.net.chaos import ChaosScenario, FaultPlan
from repro.net.client import (CircuitBreaker, HttpClient, RetryPolicy,
                              TlsSessionCache)
from repro.net.errors import NetError, TlsError
from repro.net.fabric import Endpoint, NetworkFabric, PacketCapture
from repro.net.server import HttpsServer
from repro.net.tls import ServerSessionStore
from repro.obs import Observability

from tests.conftest import make_client, make_https_server

HOST = "api.example.com"


def make_caching_client(fabric, trust_store, rng, cache, today=0,
                        proxy=None, obs=None, retry_policy=None,
                        breaker=None):
    client = make_client(fabric, trust_store, rng, proxy=proxy)
    return HttpClient(fabric, client.endpoint, trust_store, client.rng,
                      proxy=client.proxy, today=today, obs=obs,
                      retry_policy=retry_policy, breaker=breaker,
                      session_cache=cache)


class TestSessionResumption:
    def setup_method(self):
        self.rng = random.Random(1234)
        self.obs = Observability()
        self.fabric = NetworkFabric(obs=self.obs)
        from repro.net.tls import CertificateAuthority, TrustStore
        self.root_ca = CertificateAuthority("Example Root CA", self.rng)
        self.trust = TrustStore()
        self.trust.add_root(self.root_ca.self_certificate())
        self.server = make_https_server(self.fabric, self.root_ca, self.rng)
        self.cache = TlsSessionCache()

    def counter(self, name):
        return self.obs.metrics.counter_total(name)

    def client(self, today=0, **kwargs):
        return make_caching_client(self.fabric, self.trust, self.rng,
                                   self.cache, today=today, obs=self.obs,
                                   **kwargs)

    def test_second_request_resumes(self):
        client = self.client()
        first = client.get(HOST, "/json", params={"q": "1"})
        second = client.get(HOST, "/json", params={"q": "1"})
        assert first.status == 200
        assert first.body == second.body
        assert self.counter("net.client.tls_handshakes") == 1
        assert self.counter("net.client.tls_resumptions") == 1
        assert len(self.cache) == 1

    def test_counters_partition_requests(self):
        client = self.client()
        total = 7
        for _ in range(total):
            client.get(HOST, "/json")
        assert (self.counter("net.client.tls_handshakes")
                + self.counter("net.client.tls_resumptions")) == total
        assert self.counter("net.client.tls_handshakes") == 1

    def test_resumption_skips_handshake_round_trips(self):
        client = self.client()
        capture = PacketCapture(self.fabric)
        client.get(HOST, "/json")
        full_frames = len(capture.frames)
        capture.frames.clear()
        client.get(HOST, "/json")
        resumed_frames = len(capture.frames)
        capture.detach()
        # Full handshake: hello + key-exchange + request = 3 round trips
        # (6 frames); resumption folds everything into one (2 frames).
        assert full_frames == 6
        assert resumed_frames == 2

    def test_no_cache_means_no_resumption(self):
        client = make_client(self.fabric, self.trust, self.rng)
        client.obs = self.obs
        client.get(HOST, "/json")
        client.get(HOST, "/json")
        assert self.counter("net.client.tls_handshakes") == 2
        assert self.counter("net.client.tls_resumptions") == 0

    def test_day_rollover_invalidates(self):
        today_client = self.client(today=0)
        today_client.get(HOST, "/json")
        assert len(self.cache) == 1
        tomorrow_client = self.client(today=1)
        tomorrow_client.get(HOST, "/json")
        # The stale day-0 ticket was evicted and replaced by a day-1
        # entry, so the first day-1 request re-handshakes...
        assert self.counter("net.client.tls_handshakes") == 2
        assert self.counter("net.client.tls_resumptions") == 0
        # ...and subsequent day-1 traffic resumes again.
        tomorrow_client.get(HOST, "/json")
        assert self.counter("net.client.tls_resumptions") == 1

    def test_flows_get_independent_sessions(self):
        from repro.parallel.flow import flow_scope
        client = self.client()
        with flow_scope("cell-a"):
            client.get(HOST, "/json")
            client.get(HOST, "/json")
        with flow_scope("cell-b"):
            client.get(HOST, "/json")
        assert self.counter("net.client.tls_handshakes") == 2
        assert self.counter("net.client.tls_resumptions") == 1
        assert len(self.cache) == 2

    def test_unknown_ticket_fails_resume_and_invalidates(self):
        client = self.client()
        client.get(HOST, "/json")
        # The server loses its ticket store (think: restart).  The
        # client's cached ticket is now garbage.
        self.server.sessions = ServerSessionStore()
        with pytest.raises(TlsError):
            client.get(HOST, "/json")
        assert self.counter("net.client.tls_resume_failures") == 1
        assert len(self.cache) == 0
        # Recovery: the next request falls back to a full handshake.
        response = client.get(HOST, "/json")
        assert response.status == 200
        assert self.counter("net.client.tls_handshakes") == 2

    def test_retry_policy_recovers_from_lost_ticket(self):
        client = self.client(retry_policy=RetryPolicy(max_attempts=3,
                                                      backoff_ops=1))
        client.get(HOST, "/json")
        self.server.sessions = ServerSessionStore()
        # The failed resume is retriable; the retry re-handshakes and
        # the caller never sees the failure.
        response = client.get(HOST, "/json")
        assert response.status == 200
        assert self.counter("net.client.tls_resume_failures") == 1
        assert self.counter("net.client.tls_handshakes") == 2

    def test_connect_fault_invalidates_host(self):
        client = self.client()
        client.get(HOST, "/json")
        assert len(self.cache) == 1
        storm = ChaosScenario(name="storm", seed=99,
                              connect_failure_rate=1.0)
        self.fabric.set_chaos(FaultPlan(storm, clock=lambda: 0))
        with pytest.raises(NetError):
            client.get(HOST, "/json")
        assert len(self.cache) == 0
        self.fabric.set_chaos(FaultPlan(ChaosScenario.off(), clock=lambda: 0))
        client.get(HOST, "/json")
        assert self.counter("net.client.tls_handshakes") == 2

    def test_breaker_open_flushes_host_sessions(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_ops=1000,
                                 obs=self.obs)
        client = self.client(breaker=breaker,
                             retry_policy=RetryPolicy(max_attempts=1,
                                                      backoff_ops=1))
        client.get(HOST, "/json")
        assert len(self.cache) == 1
        storm = ChaosScenario(name="storm", seed=7,
                              connect_failure_rate=1.0)
        self.fabric.set_chaos(FaultPlan(storm, clock=lambda: 0))
        with pytest.raises(NetError):
            client.get(HOST, "/json")
        assert breaker.is_open(HOST)
        assert len(self.cache) == 0


class TestResumptionByteIdentity:
    """Same seed, resumption on vs off: HTTP payloads are identical."""

    def _run(self, use_cache):
        rng = random.Random(2019)
        fabric = NetworkFabric()
        from repro.net.tls import CertificateAuthority, TrustStore
        root_ca = CertificateAuthority("Example Root CA", rng)
        trust = TrustStore()
        trust.add_root(root_ca.self_certificate())
        make_https_server(fabric, root_ca, rng)
        cache = TlsSessionCache() if use_cache else None
        base = make_client(fabric, trust, rng)
        client = HttpClient(fabric, base.endpoint, trust, base.rng,
                            session_cache=cache)
        bodies = []
        for index in range(5):
            response = client.post_json(HOST, "/echo",
                                        {"n": index, "msg": "hello"})
            bodies.append(response.body)
            bodies.append(response.to_bytes())
        return bodies

    def test_payloads_identical_on_and_off(self):
        assert self._run(use_cache=True) == self._run(use_cache=False)


class TestTicketMinting:
    def test_server_without_store_mints_no_ticket(self, fabric, root_ca,
                                                  trust_store, rng):
        from repro.net.tls import (TlsClientSession, issue_server_identity,
                                   TlsServerHandler)
        from repro.net.http import HttpResponse
        # A handler constructed without a session store (the MITM
        # impersonation path) must not offer tickets.
        server = make_https_server(fabric, root_ca, rng)
        cache = TlsSessionCache()
        client = make_caching_client(fabric, trust_store, rng, cache)
        client.get(HOST, "/json")
        assert len(server.sessions) == 1
        assert len(cache) == 1

    def test_proxied_requests_resume_both_legs(self, fabric, root_ca,
                                               trust_store, rng):
        from repro.net.proxy import MitmProxy
        from repro.net.tls import TrustStore
        make_https_server(fabric, root_ca, rng)
        address = fabric.asn_db.allocate(14061, rng)
        proxy = MitmProxy(fabric, "mitm.lab.example", address, rng,
                          upstream_trust=trust_store)
        device_trust = TrustStore()
        device_trust.add_root(root_ca.self_certificate())
        device_trust.add_root(proxy.ca_certificate())
        cache = TlsSessionCache()
        client = make_caching_client(fabric, device_trust, rng, cache,
                                     proxy=(proxy.hostname, proxy.port))
        first = client.get(HOST, "/json")
        second = client.get(HOST, "/json")
        assert first.status == second.status == 200
        # The impersonation handler mints tickets off the proxy-wide
        # ticket table, so the phone-side client banks a session for the
        # logical host; the proxy's upstream leg caches its own.
        assert len(cache) == 1
        assert len(proxy.sessions) >= 1
        assert len(proxy.upstream_sessions) == 1


class TestTlsSessionCacheUnit:
    def test_checkout_counts_uses(self):
        cache = TlsSessionCache()
        cache.store("h", 0, "f", b"t" * 16, b"e" * 32, b"m" * 32)
        first = cache.checkout("h", 0, "f")
        second = cache.checkout("h", 0, "f")
        assert first[3] == 1
        assert second[3] == 2

    def test_checkout_misses(self):
        cache = TlsSessionCache()
        assert cache.checkout("h", 0, "f") is None
        cache.store("h", 0, "f", b"t" * 16, b"e" * 32, b"m" * 32)
        assert cache.checkout("h", 1, "f") is None     # day rolled over
        assert len(cache) == 0                         # ...and evicted
        cache.store("h", 0, "f", b"t" * 16, b"e" * 32, b"m" * 32)
        assert cache.checkout("other", 0, "f") is None
        assert cache.checkout("h", 0, "other-flow") is None

    def test_invalidate_host_drops_all_flows(self):
        cache = TlsSessionCache()
        cache.store("h", 0, "a", b"t" * 16, b"e" * 32, b"m" * 32)
        cache.store("h", 0, "b", b"t" * 16, b"e" * 32, b"m" * 32)
        cache.store("other", 0, "a", b"t" * 16, b"e" * 32, b"m" * 32)
        cache.invalidate_host("h")
        assert len(cache) == 1
        assert cache.checkout("other", 0, "a") is not None
