"""Crypto primitive tests: primes, RSA, stream cipher, key derivation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import crypto


class TestPrimes:
    def test_small_primes_detected(self):
        rng = random.Random(0)
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert crypto.is_probable_prime(p, rng)

    def test_small_composites_rejected(self):
        rng = random.Random(0)
        for c in (0, 1, 4, 9, 15, 561, 7917):  # 561 is a Carmichael number
            assert not crypto.is_probable_prime(c, rng)

    def test_generated_prime_has_requested_bits(self):
        rng = random.Random(42)
        for bits in (16, 32, 64):
            p = crypto.generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert crypto.is_probable_prime(p, rng)

    def test_too_small_prime_request_rejected(self):
        with pytest.raises(ValueError):
            crypto.generate_prime(4, random.Random(0))


class TestModularInverse:
    def test_inverse_property(self):
        assert (crypto.modular_inverse(3, 11) * 3) % 11 == 1

    def test_no_inverse(self):
        with pytest.raises(ValueError):
            crypto.modular_inverse(6, 9)


class TestRsa:
    def setup_method(self):
        self.rng = random.Random(99)
        self.pair = crypto.generate_keypair(256, self.rng)

    def test_sign_verify(self):
        signature = crypto.sign(b"offer wall", self.pair.private)
        assert crypto.verify(b"offer wall", signature, self.pair.public)

    def test_verify_rejects_tampered_data(self):
        signature = crypto.sign(b"offer wall", self.pair.private)
        assert not crypto.verify(b"offer wal1", signature, self.pair.public)

    def test_verify_rejects_wrong_key(self):
        other = crypto.generate_keypair(256, self.rng)
        signature = crypto.sign(b"data", self.pair.private)
        assert not crypto.verify(b"data", signature, other.public)

    def test_encrypt_decrypt_round_trip(self):
        secret = self.rng.getrandbits(192)
        assert crypto.decrypt(crypto.encrypt(secret, self.pair.public),
                              self.pair.private) == secret

    def test_encrypt_rejects_oversized_plaintext(self):
        with pytest.raises(ValueError):
            crypto.encrypt(self.pair.public.modulus + 1, self.pair.public)

    def test_fingerprint_is_stable_and_distinct(self):
        assert self.pair.public.fingerprint() == self.pair.public.fingerprint()
        other = crypto.generate_keypair(256, self.rng)
        assert other.public.fingerprint() != self.pair.public.fingerprint()

    def test_keypair_too_small_rejected(self):
        with pytest.raises(ValueError):
            crypto.generate_keypair(64, self.rng)


class TestStreamCipher:
    def test_round_trip(self):
        key, nonce = b"k" * 32, b"n" * 8
        data = b"the offers json payload" * 10
        sealed = crypto.keystream_xor(key, nonce, data)
        assert sealed != data
        assert crypto.keystream_xor(key, nonce, sealed) == data

    def test_different_nonce_different_keystream(self):
        key = b"k" * 32
        data = b"x" * 64
        assert (crypto.keystream_xor(key, b"a" * 8, data)
                != crypto.keystream_xor(key, b"b" * 8, data))

    @settings(max_examples=25)
    @given(st.binary(max_size=512), st.binary(min_size=8, max_size=8))
    def test_involution_property(self, data, nonce):
        key = b"fixed-key-material-for-testing!!"
        once = crypto.keystream_xor(key, nonce, data)
        assert crypto.keystream_xor(key, nonce, once) == data


class TestKeyDerivation:
    def test_deterministic(self):
        args = (b"p" * 24, b"c" * 16, b"s" * 16)
        assert crypto.derive_keys(*args) == crypto.derive_keys(*args)

    def test_enc_and_mac_keys_differ(self):
        enc, mac = crypto.derive_keys(b"p" * 24, b"c" * 16, b"s" * 16)
        assert enc != mac

    def test_sensitive_to_every_input(self):
        base = crypto.derive_keys(b"p" * 24, b"c" * 16, b"s" * 16)
        assert crypto.derive_keys(b"q" * 24, b"c" * 16, b"s" * 16) != base
        assert crypto.derive_keys(b"p" * 24, b"d" * 16, b"s" * 16) != base
        assert crypto.derive_keys(b"p" * 24, b"c" * 16, b"t" * 16) != base


class TestHmac:
    def test_constant_time_equal(self):
        assert crypto.constant_time_equal(b"abc", b"abc")
        assert not crypto.constant_time_equal(b"abc", b"abd")

    def test_hmac_keyed(self):
        assert (crypto.hmac_sha256(b"k1", b"data")
                != crypto.hmac_sha256(b"k2", b"data"))
