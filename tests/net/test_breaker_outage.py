"""CircuitBreaker half-open transitions across OutageWindow boundaries.

A scheduled outage (the chaos engine's persistent host-down window) is
the scenario the breaker exists for: failures open the circuit, a
half-open probe *inside* the window must re-open it, and the first
probe *after* the window closes it again.  These tests drive a real
client against a real server through a day-clocked :class:`FaultPlan`
and pin the full transition sequence — including that the breaker's
checkpointed state resumes mid-window without replaying the schedule.
"""

from __future__ import annotations

import pytest

from repro.net.chaos import ChaosScenario, FaultPlan, OutageWindow
from repro.net.client import CircuitBreaker, HttpClient
from repro.net.errors import CircuitOpenError, ConnectionRefusedFabricError
from repro.obs import Observability

from tests.conftest import make_client, make_https_server

pytestmark = pytest.mark.chaos

HOST = "wall.example.com"
HTTPS = 443


@pytest.fixture()
def obs():
    return Observability()


def make_outage_rig(fabric, root_ca, trust_store, rng, obs,
                    start_day=1, end_day=2, **breaker_kwargs):
    """A server for HOST, an outage window over it, and a breaker-armed
    client with no retry policy (one allow() per get)."""
    make_https_server(fabric, root_ca, rng, hostname=HOST)
    clock = {"day": 0}
    scenario = ChaosScenario(
        name="outage", outages=(
            OutageWindow(host=HOST, start_day=start_day, end_day=end_day),))
    fabric.set_chaos(FaultPlan(scenario, clock=lambda: clock["day"]))
    breaker = CircuitBreaker(obs=obs, **breaker_kwargs)
    client = make_client(fabric, trust_store, rng)
    client.obs = obs
    client.retry_policy = None
    client.breaker = breaker
    return clock, client, breaker


def get_outcome(client: HttpClient) -> str:
    try:
        return "ok" if client.get(HOST, "/json").ok else "http_error"
    except CircuitOpenError:
        return "rejected"
    except ConnectionRefusedFabricError:
        return "refused"


class TestHalfOpenAcrossTheWindow:
    def test_probe_inside_the_window_reopens_probe_after_closes(
            self, fabric, root_ca, trust_store, rng, obs):
        clock, client, breaker = make_outage_rig(
            fabric, root_ca, trust_store, rng, obs,
            failure_threshold=2, recovery_ops=3)

        # Day 0: the host is healthy, the circuit is closed.
        assert get_outcome(client) == "ok"

        # Day 1: the outage starts; two refused connects open the
        # circuit, later calls are rejected without touching the wire.
        clock["day"] = 1
        wire_before = fabric.connections_accepted(HOST, HTTPS)
        assert get_outcome(client) == "refused"
        assert get_outcome(client) == "refused"
        assert breaker.is_open(HOST)
        outcomes = [get_outcome(client) for _ in range(3)]
        # The recovery window (3 ops on the breaker's own clock) is
        # burnt by the rejections themselves; the call after it is the
        # half-open probe — still inside the outage, so it fails and
        # re-opens the circuit for a fresh window.
        assert outcomes == ["rejected", "rejected", "refused"]
        assert breaker.is_open(HOST)
        assert fabric.connections_accepted(HOST, HTTPS) == wire_before

        # Day 3: the window is over.  Burn the re-opened quarantine;
        # this probe reaches the healed host and closes the circuit.
        clock["day"] = 3
        outcomes = [get_outcome(client) for _ in range(3)]
        assert outcomes == ["rejected", "rejected", "ok"]
        assert not breaker.is_open(HOST)
        assert get_outcome(client) == "ok"

        value = obs.metrics.counter_value
        assert value("net.client.circuit_opened", host=HOST) == 1
        assert value("net.client.circuit_half_open", host=HOST) == 2
        assert value("net.client.circuit_reopened", host=HOST) == 1
        assert value("net.client.circuit_closed", host=HOST) == 1
        assert value("net.client.circuit_rejected", host=HOST) == 4
        assert value("net.client.request_failures", host=HOST,
                     error="ConnectionRefusedFabricError") == 3

    def test_window_boundary_day_still_counts_as_down(
            self, fabric, root_ca, trust_store, rng, obs):
        # end_day is inclusive: a probe landing exactly on it fails.
        clock, client, breaker = make_outage_rig(
            fabric, root_ca, trust_store, rng, obs,
            start_day=1, end_day=1, failure_threshold=1, recovery_ops=1)
        clock["day"] = 1
        assert get_outcome(client) == "refused"       # opens
        assert breaker.is_open(HOST)
        assert get_outcome(client) == "refused"       # immediate probe fails
        assert obs.metrics.counter_value(
            "net.client.circuit_reopened", host=HOST) == 1
        clock["day"] = 2
        assert get_outcome(client) == "ok"            # first post-window probe
        assert not breaker.is_open(HOST)


class TestBreakerStateAcrossRestart:
    def test_restored_breaker_resumes_the_quarantine_mid_window(
            self, fabric, root_ca, trust_store, rng, obs):
        clock, client, breaker = make_outage_rig(
            fabric, root_ca, trust_store, rng, obs,
            failure_threshold=2, recovery_ops=4)
        clock["day"] = 1
        assert get_outcome(client) == "refused"
        assert get_outcome(client) == "refused"
        assert breaker.is_open(HOST)

        # "Crash" mid-outage: checkpoint the breaker, stand up a fresh
        # client + breaker, and restore.
        state = breaker.state_dict()
        restored_obs = Observability()
        restored = CircuitBreaker(failure_threshold=2, recovery_ops=4,
                                  obs=restored_obs)
        restored.load_state(state)
        assert restored.is_open(HOST)
        client2 = make_client(fabric, trust_store, rng)
        client2.obs = restored_obs
        client2.retry_policy = None
        client2.breaker = restored

        # The restored run is still quarantined — no reset-to-closed on
        # restart — and its op clock picks up where the crashed run
        # stopped: three rejections remain before the next probe.
        assert [get_outcome(client2) for _ in range(4)] == \
            ["rejected", "rejected", "rejected", "refused"]
        assert restored.is_open(HOST)
        assert restored_obs.metrics.counter_value(
            "net.client.circuit_reopened", host=HOST) == 1

        # And the post-window probe closes it, same as an uninterrupted
        # breaker would.
        clock["day"] = 3
        assert [get_outcome(client2) for _ in range(4)][-1] == "ok"
        assert not restored.is_open(HOST)

    def test_state_roundtrip_is_lossless(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_ops=4)
        breaker.allow(HOST)
        breaker.record_failure(HOST)
        breaker.record_failure(HOST)
        clone = CircuitBreaker(failure_threshold=2, recovery_ops=4)
        clone.load_state(breaker.state_dict())
        assert clone.state_dict() == breaker.state_dict()
