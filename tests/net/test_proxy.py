"""Proxy tests: forward relay semantics, mitm interception, VPN exits."""

import random

import pytest

from repro.net.errors import CertificateVerificationError
from repro.net.proxy import ForwardProxy, MitmProxy
from repro.net.tls import TrustStore
from repro.net.vpn import VpnExitPool
from tests.conftest import make_client, make_https_server


def _forward_proxy(fabric, rng, hostname="fwd.example"):
    address = fabric.asn_db.allocate(16509, rng)
    return ForwardProxy(fabric, hostname, address)


def _mitm_proxy(fabric, rng, upstream_trust, hostname="mitm.example"):
    address = fabric.asn_db.allocate(16509, rng)
    return MitmProxy(fabric, hostname, address, rng,
                     upstream_trust=upstream_trust)


class TestForwardProxy:
    def test_tunnelled_request_succeeds(self, fabric, root_ca, trust_store,
                                        rng, https_server):
        proxy = _forward_proxy(fabric, rng)
        client = make_client(fabric, trust_store, rng,
                             proxy=(proxy.hostname, proxy.port))
        response = client.get("api.example.com", "/json")
        assert response.ok

    def test_server_sees_proxy_address(self, fabric, root_ca, trust_store,
                                       rng, https_server):
        proxy = _forward_proxy(fabric, rng)
        client = make_client(fabric, trust_store, rng,
                             proxy=(proxy.hostname, proxy.port))
        response = client.get("api.example.com", "/json")
        assert response.json()["client"] == str(proxy.endpoint.address)

    def test_tls_still_verified_through_tunnel(self, fabric, root_ca, rng,
                                               https_server):
        proxy = _forward_proxy(fabric, rng)
        client = make_client(fabric, TrustStore(), rng,
                             proxy=(proxy.hostname, proxy.port))
        with pytest.raises(CertificateVerificationError):
            client.get("api.example.com", "/json")


class TestMitmProxy:
    def test_interception_with_installed_ca(self, fabric, root_ca, trust_store,
                                            rng, https_server):
        mitm = _mitm_proxy(fabric, rng, upstream_trust=trust_store)
        victim_store = TrustStore()
        victim_store.add_root(root_ca.self_certificate())
        victim_store.add_root(mitm.ca_certificate())
        client = make_client(fabric, victim_store, rng,
                             proxy=(mitm.hostname, mitm.port))
        response = client.get("api.example.com", "/json", params={"c": "US"})
        assert response.ok
        assert len(mitm.intercepted) == 1
        exchange = mitm.intercepted[0]
        assert exchange.host == "api.example.com"
        assert exchange.request.query == {"c": "US"}
        assert exchange.response.json()["query"] == {"c": "US"}

    def test_interception_fails_without_installed_ca(self, fabric, root_ca,
                                                     trust_store, rng,
                                                     https_server):
        mitm = _mitm_proxy(fabric, rng, upstream_trust=trust_store)
        client = make_client(fabric, trust_store, rng,
                             proxy=(mitm.hostname, mitm.port))
        with pytest.raises(CertificateVerificationError):
            client.get("api.example.com", "/json")
        assert mitm.intercepted == []

    def test_pinning_defeats_interception(self, fabric, root_ca, trust_store,
                                          rng, https_server):
        from repro.net.errors import CertificatePinningError
        mitm = _mitm_proxy(fabric, rng, upstream_trust=trust_store)
        victim_store = TrustStore()
        victim_store.add_root(root_ca.self_certificate())
        victim_store.add_root(mitm.ca_certificate())
        pins = {"api.example.com": https_server.identity.leaf.fingerprint()}
        client = make_client(fabric, victim_store, rng,
                             proxy=(mitm.hostname, mitm.port), pins=pins)
        with pytest.raises(CertificatePinningError):
            client.get("api.example.com", "/json")
        assert mitm.intercepted == []

    def test_clear_and_host_filter(self, fabric, root_ca, trust_store, rng,
                                   https_server):
        mitm = _mitm_proxy(fabric, rng, upstream_trust=trust_store)
        victim_store = TrustStore()
        victim_store.add_root(root_ca.self_certificate())
        victim_store.add_root(mitm.ca_certificate())
        client = make_client(fabric, victim_store, rng,
                             proxy=(mitm.hostname, mitm.port))
        client.get("api.example.com", "/json")
        assert mitm.exchanges_for_host("api.example.com")
        assert mitm.exchanges_for_host("other.example") == []
        mitm.clear()
        assert mitm.intercepted == []


class TestVpnExitPool:
    def test_exit_changes_apparent_country(self, fabric, root_ca, trust_store,
                                           rng, https_server):
        pool = VpnExitPool(fabric, rng, countries=("US", "DE", "GB"))
        for country in ("US", "DE", "GB"):
            client = make_client(fabric, trust_store, rng,
                                 proxy=pool.proxy_address(country))
            response = client.get("api.example.com", "/json")
            seen = response.json()["client"]
            from repro.net.ip import IPv4Address
            assert fabric.asn_db.country_of(IPv4Address.from_string(seen)) == country

    def test_country_without_datacenter_falls_back(self, fabric, rng):
        # India hosts no datacenter ASN in our database; the exit should
        # still come up (commercial VPNs route via the nearest DC).
        pool = VpnExitPool(fabric, rng, countries=("IN",))
        assert pool.proxy_address("IN")[0].startswith("exit-in.")

    def test_unknown_country_raises(self, fabric, rng):
        pool = VpnExitPool(fabric, rng, countries=("US",))
        with pytest.raises(KeyError):
            pool.exit_for("ZZ")

    def test_exit_country_of(self, fabric, rng):
        pool = VpnExitPool(fabric, rng, countries=("US", "GB"))
        hostname, _ = pool.proxy_address("GB")
        assert pool.exit_country_of(hostname) == "GB"
        assert pool.exit_country_of("unknown.example") is None

    def test_countries_listing(self, fabric, rng):
        pool = VpnExitPool(fabric, rng, countries=("US", "GB", "ES"))
        assert pool.countries() == ["ES", "GB", "US"]
