"""The chaos engine: deterministic schedules, profiles, fault tables."""

from __future__ import annotations

import pytest

from repro.net.chaos import (
    CHAOS_PROFILES,
    ChaosScenario,
    FaultPlan,
    HttpFault,
    INJECTED_STATUSES,
    OutageWindow,
    clone_exception,
)
from repro.net.errors import (
    ConnectionRefusedFabricError,
    NetError,
    TransientNetworkError,
)
from repro.net.fabric import Endpoint, NetworkFabric

pytestmark = pytest.mark.chaos


# -- scenarios / profiles ----------------------------------------------------


def test_off_scenario_is_disabled():
    assert not ChaosScenario.off().enabled
    assert not ChaosScenario.profile("off").enabled


@pytest.mark.parametrize("name", ["mild", "paper", "harsh"])
def test_named_profiles_enabled(name):
    scenario = ChaosScenario.profile(name, seed=5)
    assert scenario.enabled
    assert scenario.name == name
    assert scenario.seed == 5


def test_unknown_profile_raises_with_known_names():
    with pytest.raises(ValueError, match="paper"):
        ChaosScenario.profile("catastrophic")


def test_profiles_ordered_by_intensity():
    mild = CHAOS_PROFILES["mild"]
    paper = CHAOS_PROFILES["paper"]
    harsh = CHAOS_PROFILES["harsh"]
    for rate in ("connect_failure_rate", "http_error_rate"):
        assert mild[rate] < paper[rate] < harsh[rate]


# -- determinism -------------------------------------------------------------


def _decision_trace(plan, hosts, days=10, per_day=20):
    trace = []
    current = {"day": 0}
    plan.bind_clock(lambda: current["day"])
    for day in range(days):
        current["day"] = day
        for host in hosts:
            for _ in range(per_day):
                fault = plan.connect_fault(host, 443)
                trace.append(type(fault).__name__ if fault else "-")
                http = plan.http_fault(host)
                trace.append(repr(http))
    return trace


def test_same_seed_same_schedule():
    hosts = ["wall.example", "play.example", "exit-br.vpn.example"]
    scenario = ChaosScenario.profile("harsh", seed=99)
    first = _decision_trace(FaultPlan(scenario), hosts)
    second = _decision_trace(FaultPlan(scenario), hosts)
    assert first == second
    assert any(entry != "-" for entry in first)  # harsh actually fires


def test_different_seed_different_schedule():
    hosts = ["wall.example", "play.example"]
    one = _decision_trace(
        FaultPlan(ChaosScenario.profile("harsh", seed=1)), hosts)
    two = _decision_trace(
        FaultPlan(ChaosScenario.profile("harsh", seed=2)), hosts)
    assert one != two


def test_disabled_plan_never_faults():
    plan = FaultPlan(ChaosScenario.off())
    for _ in range(200):
        assert plan.connect_fault("host.example", 443) is None
        assert plan.http_fault("host.example") is None
        assert plan.corrupt_frame("host.example", b"x" * 64) is None


def test_injected_statuses_are_retriable_shapes():
    plan = FaultPlan(ChaosScenario(name="t", seed=3, http_error_rate=1.0))
    fault = plan.http_fault("wall.example")
    assert isinstance(fault, HttpFault)
    assert fault.kind == "status"
    assert fault.status in INJECTED_STATUSES


def test_transient_connect_fault_at_full_rate():
    plan = FaultPlan(ChaosScenario(name="t", seed=3,
                                   connect_failure_rate=1.0))
    fault = plan.connect_fault("wall.example", 443)
    assert isinstance(fault, TransientNetworkError)


# -- outage windows / vpn ----------------------------------------------------


def test_outage_window_covers_day_range_and_port():
    window = OutageWindow(host="iip.example", start_day=3, end_day=5)
    assert window.covers("iip.example", 443, 3)
    assert window.covers("iip.example", 8080, 5)
    assert not window.covers("iip.example", 443, 6)
    assert not window.covers("other.example", 443, 4)
    pinned = OutageWindow(host="iip.example", start_day=0, end_day=9,
                          port=443)
    assert pinned.covers("iip.example", 443, 1)
    assert not pinned.covers("iip.example", 80, 1)


def test_scheduled_outage_raises_refused_inside_window_only():
    scenario = ChaosScenario(
        name="t", seed=0,
        outages=(OutageWindow(host="iip.example", start_day=2, end_day=4),))
    current = {"day": 0}
    plan = FaultPlan(scenario, clock=lambda: current["day"])
    assert plan.connect_fault("iip.example", 443) is None
    current["day"] = 3
    fault = plan.connect_fault("iip.example", 443)
    assert isinstance(fault, ConnectionRefusedFabricError)
    current["day"] = 5
    assert plan.connect_fault("iip.example", 443) is None


def test_vpn_outage_only_hits_marked_exits():
    scenario = ChaosScenario(name="t", seed=4, vpn_outage_rate=1.0)
    plan = FaultPlan(scenario)
    plan.mark_vpn_exit("exit-br.vpn.example")
    fault = plan.connect_fault("exit-br.vpn.example", 8080)
    assert isinstance(fault, ConnectionRefusedFabricError)
    assert plan.connect_fault("not-an-exit.example", 8080) is None


def test_vpn_outage_is_whole_day():
    """The decision is per (exit, day): every connect that day agrees."""
    scenario = ChaosScenario(name="t", seed=11, vpn_outage_rate=0.5)
    current = {"day": 0}
    plan = FaultPlan(scenario, clock=lambda: current["day"])
    plan.mark_vpn_exit("exit-us.vpn.example")
    for day in range(20):
        current["day"] = day
        outcomes = {plan.connect_fault("exit-us.vpn.example", 8080) is None
                    for _ in range(5)}
        assert len(outcomes) == 1


# -- corruption --------------------------------------------------------------


def test_corrupt_frame_truncates_deterministically():
    scenario = ChaosScenario(name="t", seed=8, truncate_rate=1.0)
    payload = b"A" * 90
    first = FaultPlan(scenario).corrupt_frame("wall.example", payload)
    second = FaultPlan(scenario).corrupt_frame("wall.example", payload)
    assert first == second
    assert first is not None and 0 < len(first) < len(payload)


def test_corrupt_json_body_is_invalid_json():
    import json
    body = json.dumps({"offers": [{"offer_id": "o1"}]}).encode()
    corrupted = FaultPlan.corrupt_json_body(body)
    with pytest.raises(Exception):
        json.loads(corrupted.decode("utf-8", "replace"))


# -- static fault table (inject_fault regression) ----------------------------


def test_clone_exception_returns_fresh_equivalent():
    template = ConnectionRefusedFabricError("host down")
    clone = clone_exception(template)
    assert clone is not template
    assert type(clone) is type(template)
    assert clone.args == template.args


def test_inject_fault_raises_fresh_instance_each_time(fabric, rng):
    """Regression: the fabric used to re-raise the *same* exception
    object on every connect, accumulating traceback/context state."""
    asn = fabric.asn_db.asns_in_country("US", kind="eyeball")[0]
    endpoint = Endpoint(address=fabric.asn_db.allocate(asn.number, rng))
    fabric.inject_fault("dead.example", 443,
                        ConnectionRefusedFabricError("dead host"))
    raised = []
    for _ in range(3):
        with pytest.raises(ConnectionRefusedFabricError) as excinfo:
            fabric.connect(endpoint, "dead.example", 443)
        raised.append(excinfo.value)
    assert len({id(exc) for exc in raised}) == 3
    assert all(exc.args == ("dead host",) for exc in raised)
    fabric.clear_fault("dead.example", 443)
    with pytest.raises(NetError):
        # Still refused -- nothing listens there -- but via the normal
        # no-listener path, not the injected fault.
        fabric.connect(endpoint, "dead.example", 443)


def test_inject_fault_accepts_factory(fabric, rng):
    asn = fabric.asn_db.asns_in_country("US", kind="eyeball")[0]
    endpoint = Endpoint(address=fabric.asn_db.allocate(asn.number, rng))
    calls = []

    def factory():
        calls.append(1)
        return TransientNetworkError("flaky")

    fabric.inject_fault("flaky.example", 443, factory)
    for _ in range(2):
        with pytest.raises(TransientNetworkError):
            fabric.connect(endpoint, "flaky.example", 443)
    assert len(calls) == 2


def test_set_chaos_keeps_existing_static_faults_and_vpn_marks():
    fabric = NetworkFabric()
    fabric.inject_fault("dead.example", 443,
                        ConnectionRefusedFabricError("down"))
    fabric.chaos.mark_vpn_exit("exit-de.vpn.example")
    fabric.set_chaos(FaultPlan(ChaosScenario.profile("mild", seed=1)))
    assert "exit-de.vpn.example" in fabric.chaos.vpn_exits
    assert fabric.chaos.connect_fault("dead.example", 443) is not None
