"""HAR export carries the obs layer's span ids and deterministic timing."""

import pytest

from repro.affiliates.registry import AFFILIATE_SPECS
from repro.monitor.milker import Milker
from repro.net.har import exchanges_to_har, load_har, save_har
from repro.simulation.world import World


@pytest.fixture(scope="module")
def milked_world():
    world = World(seed=3)
    mitm = world.build_mitm()
    phone_trust = world.device_trust_store()
    phone_trust.add_root(mitm.ca_certificate())
    phone = world.device_factory.real_phone("US", trust_store=phone_trust)
    milker = Milker(world.fabric, phone, mitm, world.walls,
                    world.seeds.rng("milker"), vpn=world.vpn)
    spec = next(iter(AFFILIATE_SPECS.values()))
    milker.milk(spec, day=0, country="US")
    return world, mitm


class TestHarSpanLinkage:
    def test_entries_carry_span_ids_of_recorded_spans(self, milked_world):
        world, mitm = milked_world
        assert mitm.intercepted, "milking should intercept traffic"
        document = exchanges_to_har(mitm.intercepted)
        entries = document["log"]["entries"]
        recorded = set(world.obs.tracer.span_ids())
        assert entries
        for entry in entries:
            assert entry["_spanId"] in recorded

    def test_entry_spans_are_the_milk_runs(self, milked_world):
        world, mitm = milked_world
        spans = {span.span_id: span for span in world.obs.tracer.spans()}
        document = exchanges_to_har(mitm.intercepted)
        for entry in document["log"]["entries"]:
            assert spans[entry["_spanId"]].name == "milk.run"

    def test_op_seq_strictly_increasing(self, milked_world):
        _, mitm = milked_world
        entries = exchanges_to_har(mitm.intercepted)["log"]["entries"]
        seqs = [entry["_opSeq"] for entry in entries]
        assert all(b > a for a, b in zip(seqs, seqs[1:]))

    def test_simulation_day_comes_from_the_clock(self, milked_world):
        world, mitm = milked_world
        entries = exchanges_to_har(mitm.intercepted)["log"]["entries"]
        assert {entry["_simulationDay"] for entry in entries} == {world.clock.day}

    def test_round_trip_preserves_span_fields(self, milked_world, tmp_path):
        _, mitm = milked_world
        path = tmp_path / "milk.har"
        save_har(mitm.intercepted, path)
        loaded = load_har(path)
        entry = loaded["log"]["entries"][0]
        assert "_spanId" in entry and "_opSeq" in entry

    def test_unobserved_exchanges_omit_span_fields(self):
        from repro.net.http import HttpRequest, HttpResponse
        from repro.net.ip import IPv4Address
        from repro.net.proxy import InterceptedExchange

        exchange = InterceptedExchange(
            host="h.example", port=443,
            client_address=IPv4Address.from_string("10.0.0.1"),
            request=HttpRequest.get("/x", "h.example"),
            response=HttpResponse.json_response({"ok": True}),
        )
        (entry,) = exchanges_to_har([exchange], day=7)["log"]["entries"]
        assert "_spanId" not in entry
        assert "_opSeq" not in entry
        assert entry["_simulationDay"] == 7
