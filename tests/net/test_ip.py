"""IPv4 / ASN model tests."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ip import AsnDatabase, AsnRecord, IPv4Address, slash24


class TestIPv4Address:
    def test_from_string_round_trip(self):
        address = IPv4Address.from_string("203.0.113.7")
        assert str(address) == "203.0.113.7"
        assert address.octets == (203, 0, 113, 7)

    def test_anonymized_drops_last_octet(self):
        address = IPv4Address.from_string("203.0.113.7")
        assert address.anonymized() == "203.0.113.0"
        assert slash24(address) == "203.0.113.0/24"

    def test_rejects_bad_strings(self):
        for bad in ("1.2.3", "1.2.3.4.5", "a.b.c.d", "256.1.1.1", ""):
            with pytest.raises(ValueError):
                IPv4Address.from_string(bad)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_equality_and_hash(self):
        a = IPv4Address.from_string("10.0.0.1")
        b = IPv4Address.from_string("10.0.0.1")
        assert a == b
        assert len({a, b}) == 1

    def test_ordering(self):
        low = IPv4Address.from_string("1.0.0.1")
        high = IPv4Address.from_string("2.0.0.1")
        assert low < high

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_string_round_trip_property(self, value):
        address = IPv4Address(value)
        assert IPv4Address.from_string(str(address)) == address

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_same_slash24_shares_prefix(self, value):
        address = IPv4Address(value)
        sibling = IPv4Address((value & 0xFFFFFF00) | ((value + 1) & 0xFF))
        assert slash24(address) == slash24(sibling)


class TestAsnRecord:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            AsnRecord(1, "X", "satellite", "US")

    def test_is_datacenter(self):
        assert AsnRecord(1, "X", "datacenter", "US").is_datacenter
        assert not AsnRecord(2, "Y", "eyeball", "US").is_datacenter


class TestAsnDatabase:
    def setup_method(self):
        self.db = AsnDatabase()
        self.rng = random.Random(7)

    def test_allocate_then_lookup(self):
        asn = self.db.eyeball_asns()[0]
        address = self.db.allocate(asn.number, self.rng)
        record = self.db.lookup(address)
        assert record is not None
        assert record.number == asn.number

    def test_lookup_unallocated_space(self):
        assert self.db.lookup(IPv4Address.from_string("250.1.2.3")) is None

    def test_country_filter(self):
        for record in self.db.asns_in_country("US", kind="datacenter"):
            assert record.country == "US"
            assert record.is_datacenter
        assert self.db.asns_in_country("US", kind="datacenter")

    def test_digitalocean_is_datacenter(self):
        numbers = {r.number for r in self.db.datacenter_asns()}
        assert 14061 in numbers  # DigitalOcean, named in the paper

    def test_allocate_in_block_stays_in_slash24(self):
        asn = self.db.eyeball_asns()[0]
        base = self.db.allocate(asn.number, self.rng)
        for _ in range(20):
            sibling = self.db.allocate_in_block(base, self.rng)
            assert slash24(sibling) == slash24(base)

    def test_country_of(self):
        asn = self.db.asns_in_country("IN", kind="eyeball")[0]
        address = self.db.allocate(asn.number, self.rng)
        assert self.db.country_of(address) == "IN"

    def test_eyeball_and_datacenter_disjoint(self):
        eyeballs = {r.number for r in self.db.eyeball_asns()}
        centers = {r.number for r in self.db.datacenter_asns()}
        assert not (eyeballs & centers)
