"""Network fabric tests: DNS, listeners, connections, taps, faults."""

import random

import pytest

from repro.net.errors import ConnectionRefusedFabricError, NetError
from repro.net.fabric import (
    ConnectionHandler,
    Endpoint,
    NetworkFabric,
    PacketCapture,
)
from repro.net.ip import IPv4Address


class EchoHandler(ConnectionHandler):
    def __init__(self, info):
        super().__init__(info)
        self.closed = False

    def on_data(self, data):
        return b"echo:" + data

    def on_close(self):
        self.closed = True


def _setup(fabric):
    rng = random.Random(5)
    server_address = fabric.asn_db.allocate(14061, rng)
    client_address = fabric.asn_db.allocate(7922, rng)
    fabric.register_host("srv.example", server_address)
    handlers = []

    def factory(info):
        handler = EchoHandler(info)
        handlers.append(handler)
        return handler

    fabric.listen("srv.example", 443, factory)
    return Endpoint(address=client_address), handlers


class TestFabric:
    def setup_method(self):
        self.fabric = NetworkFabric()
        self.client, self.handlers = _setup(self.fabric)

    def test_roundtrip(self):
        with self.fabric.connect(self.client, "srv.example", 443) as conn:
            assert conn.roundtrip(b"hi") == b"echo:hi"

    def test_server_sees_client_address(self):
        with self.fabric.connect(self.client, "srv.example", 443) as conn:
            conn.roundtrip(b"x")
        assert self.handlers[0].info.client_address == self.client.address

    def test_unknown_host_refused(self):
        with pytest.raises(ConnectionRefusedFabricError):
            self.fabric.connect(self.client, "nope.example", 443)

    def test_unbound_port_refused(self):
        with pytest.raises(ConnectionRefusedFabricError):
            self.fabric.connect(self.client, "srv.example", 80)

    def test_resolve(self):
        assert isinstance(self.fabric.resolve("srv.example"), IPv4Address)

    def test_duplicate_hostname_rejected(self):
        with pytest.raises(ValueError):
            self.fabric.register_host("srv.example", self.client.address)

    def test_duplicate_listener_rejected(self):
        with pytest.raises(ValueError):
            self.fabric.listen("srv.example", 443, lambda info: EchoHandler(info))

    def test_listen_requires_dns(self):
        with pytest.raises(ValueError):
            self.fabric.listen("ghost.example", 443, lambda info: EchoHandler(info))

    def test_close_notifies_handler_once(self):
        conn = self.fabric.connect(self.client, "srv.example", 443)
        conn.close()
        conn.close()
        assert self.handlers[0].closed

    def test_roundtrip_after_close_fails(self):
        conn = self.fabric.connect(self.client, "srv.example", 443)
        conn.close()
        with pytest.raises(NetError):
            conn.roundtrip(b"late")

    def test_connections_accepted_counter(self):
        assert self.fabric.connections_accepted("srv.example", 443) == 0
        self.fabric.connect(self.client, "srv.example", 443).close()
        self.fabric.connect(self.client, "srv.example", 443).close()
        assert self.fabric.connections_accepted("srv.example", 443) == 2

    def test_unlisten(self):
        self.fabric.unlisten("srv.example", 443)
        assert not self.fabric.is_listening("srv.example", 443)
        with pytest.raises(ConnectionRefusedFabricError):
            self.fabric.connect(self.client, "srv.example", 443)


class TestTapAndFaults:
    def setup_method(self):
        self.fabric = NetworkFabric()
        self.client, _ = _setup(self.fabric)

    def test_packet_capture_sees_both_directions(self):
        capture = PacketCapture(self.fabric)
        with self.fabric.connect(self.client, "srv.example", 443) as conn:
            conn.roundtrip(b"ping")
        directions = [frame.direction for frame in capture.frames]
        assert directions == ["request", "response"]
        assert capture.payloads_to("srv.example") == [b"ping", b"echo:ping"]

    def test_detached_capture_stops_recording(self):
        capture = PacketCapture(self.fabric)
        capture.detach()
        with self.fabric.connect(self.client, "srv.example", 443) as conn:
            conn.roundtrip(b"ping")
        assert capture.frames == []

    def test_fault_injection_and_clear(self):
        boom = ConnectionRefusedFabricError("synthetic outage")
        self.fabric.inject_fault("srv.example", 443, boom)
        with pytest.raises(ConnectionRefusedFabricError, match="synthetic"):
            self.fabric.connect(self.client, "srv.example", 443)
        self.fabric.clear_fault("srv.example", 443)
        with self.fabric.connect(self.client, "srv.example", 443) as conn:
            assert conn.roundtrip(b"ok") == b"echo:ok"
