"""Property-based tests of the TLS record layer and failure injection
across the monitoring pipeline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import crypto
from repro.net.errors import TlsError
from repro.net.tls import _RecordCodec


def make_codecs():
    enc, mac = crypto.derive_keys(b"p" * 24, b"c" * 16, b"s" * 16)
    return _RecordCodec(enc, mac), _RecordCodec(enc, mac)


class TestRecordCodecProperties:
    @settings(max_examples=50)
    @given(st.binary(max_size=4096))
    def test_seal_open_round_trip(self, payload):
        sender, receiver = make_codecs()
        assert receiver.open(sender.seal(payload)) == payload

    @settings(max_examples=50)
    @given(st.lists(st.binary(max_size=256), min_size=1, max_size=10))
    def test_sequenced_stream_round_trip(self, payloads):
        sender, receiver = make_codecs()
        for payload in payloads:
            assert receiver.open(sender.seal(payload)) == payload

    @settings(max_examples=30)
    @given(st.binary(min_size=1, max_size=512),
           st.integers(min_value=16))
    def test_bit_flip_detected(self, payload, position):
        sender, receiver = make_codecs()
        record = bytearray(sender.seal(payload))
        index = 16 + position % max(1, len(record) - 16)
        record[index] ^= 0x01
        with pytest.raises(TlsError):
            receiver.open(bytes(record))

    @settings(max_examples=30)
    @given(st.binary(max_size=256))
    def test_ciphertext_differs_from_plaintext(self, payload):
        sender, _ = make_codecs()
        if len(payload) < 8:
            return
        record = sender.seal(payload)
        assert payload not in record

    def test_reordering_detected(self):
        sender, receiver = make_codecs()
        first = sender.seal(b"one")
        second = sender.seal(b"two")
        with pytest.raises(TlsError, match="replay|reorder"):
            receiver.open(second)
        # After the failure the legitimate record still opens.
        assert receiver.open(first) == b"one"

    def test_truncated_record_rejected(self):
        sender, receiver = make_codecs()
        record = sender.seal(b"payload")
        with pytest.raises(TlsError):
            receiver.open(record[:-5])

    def test_garbage_rejected(self):
        _, receiver = make_codecs()
        with pytest.raises(TlsError):
            receiver.open(b"not a record at all")
