"""HTTP codec tests: round trips, accessors, and malformed input."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.errors import HttpProtocolError
from repro.net.http import Headers, HttpRequest, HttpResponse


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "text/plain")])
        assert headers.get("content-type") == "text/plain"
        assert headers.get("CONTENT-TYPE") == "text/plain"

    def test_get_default(self):
        assert Headers().get("missing", "fallback") == "fallback"

    def test_set_replaces_all_occurrences(self):
        headers = Headers([("X-A", "1"), ("x-a", "2")])
        headers.set("X-A", "3")
        assert headers.get_all("x-a") == ["3"]

    def test_add_preserves_order_and_duplicates(self):
        headers = Headers()
        headers.add("Via", "a")
        headers.add("Via", "b")
        assert headers.get_all("via") == ["a", "b"]

    def test_contains(self):
        headers = Headers([("Host", "x")])
        assert "host" in headers
        assert "absent" not in headers

    def test_rejects_header_injection(self):
        with pytest.raises(HttpProtocolError):
            Headers([("Evil", "a\r\nX-Injected: 1")])

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        duplicate = original.copy()
        duplicate.set("A", "2")
        assert original.get("A") == "1"


class TestRequestCodec:
    def test_get_round_trip(self):
        request = HttpRequest.get("/offers", "wall.fyber.example",
                                  params={"country": "US", "app": "x"})
        parsed = HttpRequest.from_bytes(request.to_bytes())
        assert parsed.method == "GET"
        assert parsed.path == "/offers"
        assert parsed.query == {"app": "x", "country": "US"}
        assert parsed.host == "wall.fyber.example"

    def test_post_json_round_trip(self):
        request = HttpRequest.post_json("/v1/telemetry", "collect.example",
                                        {"event": "open", "n": 3})
        parsed = HttpRequest.from_bytes(request.to_bytes())
        assert parsed.json() == {"event": "open", "n": 3}
        assert parsed.headers.get("content-type") == "application/json"

    def test_reserialization_is_stable(self):
        request = HttpRequest.post_json("/a", "h", {"k": "v"})
        wire = request.to_bytes()
        assert HttpRequest.from_bytes(wire).to_bytes() == wire

    def test_unsupported_method_rejected(self):
        with pytest.raises(HttpProtocolError):
            HttpRequest(method="BREW", target="/")

    def test_missing_header_terminator(self):
        with pytest.raises(HttpProtocolError):
            HttpRequest.from_bytes(b"GET / HTTP/1.1\r\nHost: x")

    def test_malformed_request_line(self):
        with pytest.raises(HttpProtocolError):
            HttpRequest.from_bytes(b"GET /\r\n\r\n")

    def test_bad_version_rejected(self):
        with pytest.raises(HttpProtocolError):
            HttpRequest.from_bytes(b"GET / SPDY/3\r\n\r\n")

    def test_body_without_content_length_rejected(self):
        with pytest.raises(HttpProtocolError):
            HttpRequest.from_bytes(b"POST /x HTTP/1.1\r\nHost: h\r\n\r\nbody")

    def test_truncated_body_rejected(self):
        wire = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(HttpProtocolError):
            HttpRequest.from_bytes(wire)

    def test_body_trimmed_to_content_length(self):
        wire = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcdef"
        assert HttpRequest.from_bytes(wire).body == b"abc"

    def test_header_without_colon_rejected(self):
        with pytest.raises(HttpProtocolError):
            HttpRequest.from_bytes(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n")

    def test_non_json_body_raises_on_json(self):
        request = HttpRequest(method="POST", target="/x",
                              headers=Headers([("Content-Length", "3")]),
                              body=b"abc")
        with pytest.raises(HttpProtocolError):
            request.json()


class TestResponseCodec:
    def test_json_response_round_trip(self):
        response = HttpResponse.json_response({"offers": [1, 2, 3]})
        parsed = HttpResponse.from_bytes(response.to_bytes())
        assert parsed.ok
        assert parsed.json() == {"offers": [1, 2, 3]}

    def test_default_reason_phrases(self):
        assert HttpResponse(status=404).reason == "Not Found"
        assert HttpResponse(status=200).reason == "OK"

    def test_error_helper(self):
        response = HttpResponse.error(503)
        assert response.status == 503
        assert not response.ok

    def test_status_out_of_range(self):
        with pytest.raises(HttpProtocolError):
            HttpResponse(status=999)

    def test_parse_status_line_without_reason(self):
        parsed = HttpResponse.from_bytes(b"HTTP/1.1 204\r\n\r\n")
        assert parsed.status == 204

    def test_malformed_status_code(self):
        with pytest.raises(HttpProtocolError):
            HttpResponse.from_bytes(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_text_round_trip_unicode(self):
        response = HttpResponse.text_response("premio 💰")
        parsed = HttpResponse.from_bytes(response.to_bytes())
        assert parsed.text() == "premio 💰"


@given(st.binary(max_size=2048))
def test_request_body_round_trip_property(body):
    headers = Headers([("Host", "h"), ("Content-Length", str(len(body)))])
    request = HttpRequest(method="POST", target="/data", headers=headers, body=body)
    assert HttpRequest.from_bytes(request.to_bytes()).body == body


@given(st.dictionaries(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                   exclude_characters="&=#+%;"), max_size=20),
    max_size=8,
))
def test_query_param_round_trip_property(params):
    request = HttpRequest.get("/p", "h", params=params)
    assert HttpRequest.from_bytes(request.to_bytes()).query == params


@given(st.integers(min_value=100, max_value=599),
       st.binary(max_size=1024))
def test_response_round_trip_property(status, body):
    headers = Headers([("Content-Length", str(len(body)))])
    response = HttpResponse(status=status, headers=headers, body=body)
    parsed = HttpResponse.from_bytes(response.to_bytes())
    assert parsed.status == status
    assert parsed.body == body
