"""DetectionService endpoint behaviour on the virtual-time loop."""

import asyncio

import pytest

from repro.detection.events import DeviceInstallEvent
from repro.detection.lockstep import LockstepDetector
from repro.obs import Observability
from repro.serve import (
    AdmissionConfig,
    DetectionService,
    ServeRequest,
    ServiceConfig,
    VirtualClock,
    VirtualTimeEventLoop,
)


def make_event(device_id, package="com.example.app", engagement=30.0):
    return DeviceInstallEvent(
        device_id=device_id,
        package=package,
        day=0,
        hour=0.0,
        ip_slash24="198.51.100.0/24",
        ssid_hash="ssid:deadbeef",
        opened=True,
        engagement_seconds=engagement,
    )


def burst(package, count, prefix="dev"):
    return [make_event(f"{prefix}-{i:03d}", package) for i in range(count)]


def run_service(scenario, **service_kwargs):
    """Run ``scenario(service)`` against a started service on a fresh
    virtual loop; returns the coroutine's result."""
    loop = VirtualTimeEventLoop()
    vclock = VirtualClock(loop)
    service = DetectionService(vclock=vclock, obs=Observability(),
                               **service_kwargs)

    async def main():
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()

    try:
        return loop.run_until_complete(main()), service
    finally:
        loop.close()


class TestIngest:
    def test_ingest_restamps_and_advances_the_watermark(self):
        async def scenario(service):
            first = await service.submit(ServeRequest("ingest", {
                "events": burst("com.a", 3)}))
            second = await service.submit(ServeRequest("ingest", {
                "events": burst("com.a", 2, prefix="late")}))
            return first, second

        (first, second), service = run_service(scenario)
        assert first.ok and first.body == {"ingested": 3, "watermark": 3}
        assert second.ok and second.body["watermark"] == 5
        assert len(service.log) == 5
        # Events were stamped at ingestion time, not with their
        # original day-0 timestamps.
        stamped = service.log.events()[-1]
        assert stamped.timestamp_hours >= 0.0

    def test_stale_retry_does_not_regress_the_stream(self):
        # The same day-0 batch submitted twice with virtual time in
        # between: without re-stamping the second submit would land
        # behind the online detector's watermark and raise.
        batch = burst("com.retry", 4)

        async def scenario(service):
            await service.submit(ServeRequest("ingest", {"events": batch}))
            await service.vclock.sleep(3600.0)
            return await service.submit(
                ServeRequest("ingest", {"events": batch}))

        response, service = run_service(scenario)
        assert response.ok
        assert service.watermark == 8


class TestFlaggedConvergence:
    def test_online_flagged_set_equals_batch_replay(self):
        async def scenario(service):
            for wave in range(3):
                # Same devices across waves -> repeated lockstep bursts.
                events = [make_event(f"farm-{i:03d}", "com.farm.app",
                                     engagement=20.0) for i in range(10)]
                await service.submit(ServeRequest("ingest", {
                    "events": events,
                    "incentivized": [e.device_id for e in events]}))
                await service.vclock.sleep(8 * 3600.0)
            return await service.submit(ServeRequest("flagged"))

        response, service = run_service(scenario)
        assert response.ok
        flagged_online = service.finalize()
        batch = LockstepDetector(service.config.detector).flag_devices(
            service.log)
        assert flagged_online == batch
        assert flagged_online  # the farm was actually caught

    def test_flagged_rejects_bad_params_with_400(self):
        async def scenario(service):
            return await service.submit(ServeRequest("flagged", {
                "min_clusters": "not-a-number"}))

        response, _ = run_service(scenario)
        assert response.status == 400
        assert "error" in response.body


class TestCachingBehaviour:
    def _flagged_around_ingest(self, **service_kwargs):
        async def scenario(service):
            first = await service.submit(ServeRequest("flagged"))
            second = await service.submit(ServeRequest("flagged"))
            await service.submit(ServeRequest("ingest", {
                "events": burst("com.b", 2)}))
            third = await service.submit(ServeRequest("flagged"))
            return first, second, third

        return run_service(scenario, **service_kwargs)

    def test_keyed_flagged_survives_an_ingest_that_flags_nothing(self):
        # Two events never make the online detector emit, so the
        # flagged body is still current after the ingest — the keyed
        # policy serves it from cache where wholesale used to discard.
        (first, second, third), service = self._flagged_around_ingest()
        assert not first.cached
        assert second.cached and second.body == first.body
        assert third.cached
        assert service.cache.hits == 2
        assert service.cache.invalidations == 0

    def test_wholesale_discards_flagged_when_the_watermark_moves(self):
        (first, second, third), service = self._flagged_around_ingest(
            config=ServiceConfig(cache_policy="wholesale"))
        assert not first.cached
        assert second.cached
        assert not third.cached
        assert service.cache.hits == 1

    def test_keyed_metrics_tracks_the_watermark(self):
        async def scenario(service):
            first = await service.submit(ServeRequest("metrics"))
            await service.submit(ServeRequest("ingest", {
                "events": burst("com.b", 2)}))
            second = await service.submit(ServeRequest("metrics"))
            return first, second

        (first, second), _ = run_service(scenario)
        assert not first.cached
        assert not second.cached
        assert second.body["watermark"] == 2

    def test_cache_hits_are_cheaper_in_virtual_time(self):
        async def scenario(service):
            loop_time = service.vclock.now
            start = loop_time()
            await service.submit(ServeRequest("flagged"))
            miss_cost = loop_time() - start
            start = loop_time()
            await service.submit(ServeRequest("flagged"))
            hit_cost = loop_time() - start
            return miss_cost, hit_cost

        (miss_cost, hit_cost), _ = run_service(scenario)
        assert hit_cost < miss_cost


class TestAdmissionIntegration:
    def test_sheds_429_once_the_burst_is_spent(self):
        async def scenario(service):
            return [await service.submit(ServeRequest("health"))
                    for _ in range(5)]

        responses, service = run_service(
            scenario,
            admission=AdmissionConfig(qps=0.001, burst=2, max_queue=4))
        statuses = [r.status for r in responses]
        assert statuses[:2] == [200, 200]
        assert set(statuses[2:]) == {429}
        assert all(r.body["reason"] == "rate"
                   for r in responses if r.status == 429)
        assert service.admission.accounting_consistent()
        assert service.admission.unshed_overflows == 0


class TestErrorsAndHealth:
    def test_unknown_endpoint_is_404(self):
        async def scenario(service):
            return await service.submit(ServeRequest("nonsense"))

        response, _ = run_service(scenario)
        assert response.status == 404
        assert "unknown endpoint" in response.body["error"]

    def test_unknown_dataset_op_is_400(self):
        async def scenario(service):
            missing = await service.submit(ServeRequest("datasets", {
                "op": "load", "name": "no-such-dataset"}))
            bad_op = await service.submit(ServeRequest("datasets", {
                "op": "explode"}))
            listing = await service.submit(ServeRequest("datasets", {
                "op": "list"}))
            return missing, bad_op, listing

        (missing, bad_op, listing), _ = run_service(scenario)
        assert missing.status == 400
        assert bad_op.status == 400
        assert listing.ok and listing.body["datasets"]

    def test_health_and_metrics_report_consistent_state(self):
        async def scenario(service):
            await service.submit(ServeRequest("ingest", {
                "events": burst("com.c", 3),
                "incentivized": ["dev-000"]}))
            health = await service.submit(ServeRequest("health"))
            metrics = await service.submit(ServeRequest("metrics"))
            return health, metrics

        (health, metrics), service = run_service(scenario)
        assert health.body["status"] == "ok"
        assert health.body["watermark"] == 3
        assert health.body["events"] == 3
        assert metrics.body["watermark"] == 3
        assert metrics.body["offered"] >= 2
        assert 0.0 <= metrics.body["precision"] <= 1.0


class TestWorkerSharding:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_any_worker_count_gives_identical_responses(self, workers):
        async def scenario(service):
            bodies = []
            for _ in range(3):
                response = await service.submit(ServeRequest("flagged"))
                bodies.append(dict(response.body))
                await service.submit(ServeRequest("ingest", {
                    "events": burst("com.d", 2)}))
            return bodies

        bodies, _ = run_service(
            scenario, config=ServiceConfig(workers=workers))
        baseline, _ = run_service(
            scenario, config=ServiceConfig(workers=1))
        assert bodies == baseline
