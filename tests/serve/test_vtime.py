"""Virtual-time event loop: sleeps cost zero wall time, determinism."""

import asyncio
import time

import pytest

from repro.serve import (
    DAY_SECONDS,
    VirtualClock,
    VirtualLoopStalled,
    VirtualTimeEventLoop,
    run_virtual,
)


class TestVirtualTime:
    def test_sleep_advances_virtual_time_not_wall_time(self):
        async def main():
            loop = asyncio.get_running_loop()
            start = loop.time()
            await asyncio.sleep(3600.0)
            return loop.time() - start

        started = time.monotonic()
        elapsed_virtual = run_virtual(main())
        elapsed_wall = time.monotonic() - started
        assert elapsed_virtual == pytest.approx(3600.0)
        assert elapsed_wall < 5.0

    def test_clock_day_and_hour_track_the_loop(self):
        async def main():
            loop = asyncio.get_running_loop()
            vclock = VirtualClock(loop)
            assert vclock.day == 0
            await vclock.sleep(DAY_SECONDS + 6 * 3600.0)
            return vclock.day, vclock.hour_of_day

        day, hour = run_virtual(main())
        assert day == 1
        assert hour == pytest.approx(6.0)

    def test_interleaved_sleepers_wake_in_timestamp_order(self):
        async def sleeper(order, delay, tag):
            await asyncio.sleep(delay)
            order.append(tag)

        async def main():
            order = []
            await asyncio.gather(
                sleeper(order, 3.0, "c"),
                sleeper(order, 1.0, "a"),
                sleeper(order, 2.0, "b"),
            )
            return order

        assert run_virtual(main()) == ["a", "b", "c"]

    def test_same_program_is_deterministic_across_runs(self):
        async def main():
            loop = asyncio.get_running_loop()
            trace = []

            async def worker(index):
                for step in range(3):
                    await asyncio.sleep(0.1 * (index + 1))
                    trace.append((round(loop.time(), 6), index, step))

            await asyncio.gather(*(worker(i) for i in range(4)))
            return trace

        assert run_virtual(main()) == run_virtual(main())

    def test_stall_raises_instead_of_blocking_forever(self):
        async def main():
            # A future nothing will ever resolve: on a wall-clock loop
            # this blocks in select() forever; the virtual loop detects
            # that no timer can advance time and raises.
            await asyncio.get_running_loop().create_future()

        loop = VirtualTimeEventLoop()
        try:
            with pytest.raises(VirtualLoopStalled):
                loop.run_until_complete(main())
        finally:
            loop.close()
