"""Watermark cache: hits, wholesale invalidation, FIFO eviction."""

from repro.obs import Observability
from repro.serve import WatermarkCache, params_key


class TestParamsKey:
    def test_order_free_and_stringified(self):
        assert params_key({"b": 2, "a": 1}) == params_key({"a": "1", "b": "2"})

    def test_distinct_values_stay_distinct(self):
        assert params_key({"a": 1}) != params_key({"a": 2})


class TestWatermarkCache:
    def test_miss_then_hit_at_the_same_watermark(self):
        cache = WatermarkCache(Observability())
        hit, _ = cache.lookup("flagged", {"min_clusters": 2}, watermark=5)
        assert not hit
        cache.store("flagged", {"min_clusters": 2}, 5, {"devices": 3})
        hit, body = cache.lookup("flagged", {"min_clusters": 2}, 5)
        assert hit and body == {"devices": 3}
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == 0.5

    def test_param_order_does_not_split_entries(self):
        cache = WatermarkCache(Observability())
        cache.store("datasets", {"op": "load", "name": "x"}, 1, "body")
        hit, body = cache.lookup("datasets", {"name": "x", "op": "load"}, 1)
        assert hit and body == "body"

    def test_watermark_movement_invalidates_everything(self):
        cache = WatermarkCache(Observability())
        cache.store("flagged", {}, 1, "old")
        cache.store("metrics", {}, 1, "old")
        hit, _ = cache.lookup("flagged", {}, watermark=2)
        assert not hit
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.obs.metrics.counter_total(
            "serve.cache_invalidations") == 1

    def test_invalidation_not_counted_when_cache_was_empty(self):
        cache = WatermarkCache(Observability())
        cache.lookup("flagged", {}, watermark=1)
        cache.lookup("flagged", {}, watermark=2)
        assert cache.invalidations == 0

    def test_fifo_eviction_drops_the_oldest_entry(self):
        cache = WatermarkCache(Observability(), max_entries=2)
        cache.store("datasets", {"n": 1}, 0, "one")
        cache.store("datasets", {"n": 2}, 0, "two")
        # A hit must NOT refresh recency: FIFO, not LRU.
        assert cache.lookup("datasets", {"n": 1}, 0)[0]
        cache.store("datasets", {"n": 3}, 0, "three")
        assert cache.evictions == 1
        assert not cache.lookup("datasets", {"n": 1}, 0)[0]
        assert cache.lookup("datasets", {"n": 2}, 0)[0]
        assert cache.lookup("datasets", {"n": 3}, 0)[0]
