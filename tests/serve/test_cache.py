"""Watermark cache: hits, keyed vs wholesale invalidation, eviction."""

import pytest

from repro.obs import Observability
from repro.serve import WatermarkCache, params_key


class TestParamsKey:
    def test_order_free_and_stringified(self):
        assert params_key({"b": 2, "a": 1}) == params_key({"a": "1", "b": "2"})

    def test_distinct_values_stay_distinct(self):
        assert params_key({"a": 1}) != params_key({"a": 2})


class TestWatermarkCache:
    def test_miss_then_hit_at_the_same_token(self):
        cache = WatermarkCache(Observability())
        hit, _ = cache.lookup("flagged", {"min_clusters": 2}, token=5)
        assert not hit
        cache.store("flagged", {"min_clusters": 2}, 5, {"devices": 3})
        hit, body = cache.lookup("flagged", {"min_clusters": 2}, 5)
        assert hit and body == {"devices": 3}
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == 0.5

    def test_param_order_does_not_split_entries(self):
        cache = WatermarkCache(Observability())
        cache.store("datasets", {"op": "load", "name": "x"}, 1, "body")
        hit, body = cache.lookup("datasets", {"name": "x", "op": "load"}, 1)
        assert hit and body == "body"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            WatermarkCache(Observability(), policy="sometimes")

    def test_fifo_eviction_drops_the_oldest_entry(self):
        cache = WatermarkCache(Observability(), max_entries=2)
        cache.store("datasets", {"n": 1}, 0, "one")
        cache.store("datasets", {"n": 2}, 0, "two")
        # A hit must NOT refresh recency: FIFO, not LRU.
        assert cache.lookup("datasets", {"n": 1}, 0)[0]
        cache.store("datasets", {"n": 3}, 0, "three")
        assert cache.evictions == 1
        assert not cache.lookup("datasets", {"n": 1}, 0)[0]
        assert cache.lookup("datasets", {"n": 2}, 0)[0]
        assert cache.lookup("datasets", {"n": 3}, 0)[0]


class TestWholesalePolicy:
    def test_token_movement_invalidates_everything(self):
        cache = WatermarkCache(Observability(), policy="wholesale")
        cache.store("flagged", {}, 1, "old")
        cache.store("metrics", {}, 1, "old")
        hit, _ = cache.lookup("flagged", {}, token=2)
        assert not hit
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.obs.metrics.counter_total(
            "serve.cache_invalidations") == 1

    def test_invalidation_not_counted_when_cache_was_empty(self):
        cache = WatermarkCache(Observability(), policy="wholesale")
        cache.lookup("flagged", {}, token=1)
        cache.lookup("flagged", {}, token=2)
        assert cache.invalidations == 0


class TestKeyedPolicy:
    def test_stale_entry_dropped_without_touching_the_rest(self):
        cache = WatermarkCache(Observability())
        cache.store("flagged", {}, 1, "flagged@1")
        cache.store("datasets", {}, 0, "static")
        # flagged's token moved; datasets' did not.
        hit, _ = cache.lookup("flagged", {}, token=2)
        assert not hit
        assert cache.invalidations == 1
        assert len(cache) == 1
        assert cache.lookup("datasets", {}, 0) == (True, "static")

    def test_entries_hit_at_their_own_tokens(self):
        cache = WatermarkCache(Observability())
        cache.store("datasets", {}, 0, "static")
        cache.store("metrics", {}, 7, "wm7")
        assert cache.lookup("datasets", {}, 0)[0]
        assert cache.lookup("metrics", {}, 7)[0]
        # The shared watermark property still tracks the max token seen.
        assert cache.watermark == 7

    def test_restored_cache_behaves_identically(self):
        cache = WatermarkCache(Observability(), max_entries=3)
        cache.store("flagged", {}, 1, "one")
        cache.store("datasets", {"n": 1}, 0, "two")
        cache.lookup("flagged", {}, 1)
        cache.lookup("flagged", {}, 2)  # stale drop
        clone = WatermarkCache(Observability(), max_entries=3)
        clone.load_state(cache.state_dict())
        assert clone.state_dict() == cache.state_dict()
        assert (clone.hits, clone.misses, clone.invalidations) == (1, 1, 1)
        assert clone.lookup("datasets", {"n": 1}, 0) == (True, "two")
