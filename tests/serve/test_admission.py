"""Admission control: token bucket refill, shed reasons, accounting."""

import pytest

from repro.obs import Observability
from repro.serve import (
    ADMIT,
    SHED_QUEUE,
    SHED_RATE,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_starve(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=3, now=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False]

    def test_refills_with_elapsed_virtual_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4, now=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.now = 1.5  # 3 tokens back at 2/s
        assert bucket.available == pytest.approx(3.0)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2, now=clock)
        clock.now = 100.0
        assert bucket.available == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, capacity=1, now=clock)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0, now=clock)


class TestAdmissionController:
    def make(self, **overrides):
        clock = FakeClock()
        defaults = dict(qps=1.0, burst=2, max_queue=3)
        defaults.update(overrides)
        controller = AdmissionController(
            AdmissionConfig(**defaults), now=clock, obs=Observability())
        return controller, clock

    def test_sheds_rate_once_the_burst_is_spent(self):
        controller, _ = self.make()
        decisions = [controller.decide("flagged", queue_depth=0)
                     for _ in range(3)]
        assert decisions == [ADMIT, ADMIT, SHED_RATE]

    def test_queue_pressure_sheds_before_spending_tokens(self):
        controller, _ = self.make()
        assert controller.decide("ingest", queue_depth=3) == SHED_QUEUE
        # The full queue did not burn a token: the burst is intact.
        assert controller.bucket.available == pytest.approx(2.0)

    def test_refill_readmits_after_virtual_time_passes(self):
        controller, clock = self.make()
        controller.decide("health", 0)
        controller.decide("health", 0)
        assert controller.decide("health", 0) == SHED_RATE
        clock.now = 1.0
        assert controller.decide("health", 0) == ADMIT

    def test_accounting_invariant_and_counters(self):
        controller, _ = self.make()
        for depth in (0, 0, 0, 3, 0):
            controller.decide("metrics", depth)
        assert controller.offered == 5
        assert controller.offered == controller.admitted + controller.shed
        assert controller.accounting_consistent()
        metrics = controller.obs.metrics
        assert metrics.counter_total("serve.requests_offered") == 5
        assert metrics.counter_value(
            "serve.shed_requests", endpoint="metrics",
            reason=SHED_QUEUE) == 1
        assert metrics.counter_value(
            "serve.shed_requests", endpoint="metrics",
            reason=SHED_RATE) == 2

    def test_unshed_overflow_is_recorded_not_expected(self):
        controller, _ = self.make()
        assert controller.unshed_overflows == 0
        controller.record_unshed_overflow("ingest")
        assert controller.unshed_overflows == 1
        assert controller.obs.metrics.counter_total(
            "serve.unshed_overflows") == 1
