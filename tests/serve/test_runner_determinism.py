"""End-to-end serve runs: byte-identical outputs at the same seed."""

import json

from repro.serve import ServeRunConfig, run_serve

#: Small enough to run in a couple of seconds, large enough to exercise
#: shedding, caching, campaigns, and flagging.
SMALL = dict(days=1, clients=3, requests_per_client_day=150.0)


def small_config(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return ServeRunConfig(**params)


def artifacts(result):
    """Everything a run externalizes, rendered to comparable text."""
    return (
        json.dumps(result.report, sort_keys=True),
        result.flagged_dump(),
        json.dumps(result.obs.metrics.snapshot(), sort_keys=True),
        result.render(),
    )


class TestServeDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        first = run_serve(small_config(seed=77))
        second = run_serve(small_config(seed=77))
        assert artifacts(first) == artifacts(second)

    def test_same_seed_chaos_runs_are_byte_identical(self):
        config = small_config(seed=77, chaos_profile="paper", chaos_seed=7)
        first = run_serve(config)
        second = run_serve(config)
        assert artifacts(first) == artifacts(second)

    def test_chaos_changes_the_run_but_not_the_invariants(self):
        clean = run_serve(small_config(seed=77))
        chaotic = run_serve(small_config(seed=77, chaos_profile="paper",
                                         chaos_seed=7))
        assert artifacts(clean) != artifacts(chaotic)
        for result in (clean, chaotic):
            report = result.report
            assert report["detection"]["online_equals_batch"]
            assert report["admission"]["unshed_overflows"] == 0
            assert report["admission"]["accounting_consistent"]
        assert chaotic.report["chaos"]["connect_faults"] > 0

    def test_different_seeds_diverge(self):
        assert (artifacts(run_serve(small_config(seed=1)))
                != artifacts(run_serve(small_config(seed=2))))

    def test_report_covers_every_endpoint(self):
        result = run_serve(small_config(seed=77))
        endpoints = result.report["endpoints"]
        assert set(endpoints) == {
            "ingest", "flagged", "datasets", "health", "metrics"}
        for stats in endpoints.values():
            latency = stats["latency_vtime_ms"]
            assert latency["p50"] <= latency["p95"] <= latency["p99"]
