"""End-to-end integration test of the Section-4 wild measurement.

Runs a scaled-down world (about 110 advertised apps, 36 baseline apps,
40 days) through the full milking + crawling pipeline and checks that
every analysis stage produces coherent output.  The paper-shape
assertions (who wins, rough factors) live in the benchmarks, which run
at a larger scale.
"""

import pytest

from repro import World, WildScenario, WildScenarioConfig
from repro.analysis.appstore_impact import (
    enforcement_decreases,
    install_increase_comparison,
    top_chart_comparison,
)
from repro.analysis.characterize import iip_summary_table, offer_type_table
from repro.analysis.funding import funding_comparison
from repro.analysis.monetization import (
    ad_library_distribution,
    arbitrage_stats,
    split_packages_by_offer_type,
)
from repro.core import WildMeasurement, WildMeasurementConfig
from repro.iip.registry import VETTED_IIPS

DAYS = 40


@pytest.fixture(scope="module")
def wild():
    world = World(seed=7)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=0.12, measurement_days=DAYS))
    scenario.build()
    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS))
    results = measurement.run()
    return world, scenario, results


class TestPipeline:
    def test_milking_finds_most_advertised_apps(self, wild):
        _, scenario, results = wild
        observed = set(results.dataset.unique_packages())
        advertised = set(scenario.advertised_packages())
        assert observed <= advertised
        assert len(observed) / len(advertised) > 0.8

    def test_no_milk_errors(self, wild):
        _, _, results = wild
        assert results.milk_errors == []

    def test_all_seven_iips_observed(self, wild):
        _, _, results = wild
        assert len(results.dataset.iips_observed()) == 7

    def test_payouts_normalised_to_usd(self, wild):
        _, scenario, results = wild
        ground_truth = {
            campaign.offer.offer_id: campaign.offer.payout_usd
            for app in scenario.advertised
            for campaign in app.campaigns
        }
        for record in results.dataset.offers():
            assert record.payout_usd == pytest.approx(
                ground_truth[record.offer_id], abs=0.02)

    def test_descriptions_survive_interception_byte_exact(self, wild):
        _, scenario, results = wild
        ground_truth = {
            campaign.offer.offer_id: campaign.offer.description
            for app in scenario.advertised
            for campaign in app.campaigns
        }
        for record in results.dataset.offers():
            assert record.description == ground_truth[record.offer_id]

    def test_crawl_archive_covers_baseline(self, wild):
        _, scenario, results = wild
        for package in scenario.baseline_packages():
            assert len(results.archive.install_series(package)) >= 10

    def test_crawl_cadence_every_other_day(self, wild):
        _, _, results = wild
        days = results.archive.crawl_days
        assert days[0] == 0
        assert all(later - earlier == 2
                   for earlier, later in zip(days, days[1:]))

    def test_campaign_windows_inside_measurement(self, wild):
        _, _, results = wild
        for package in results.dataset.unique_packages():
            start, end = results.dataset.campaign_window(package)
            assert 0 <= start <= end < DAYS


class TestAnalyses:
    def test_offer_type_table_covers_both_categories(self, wild):
        _, _, results = wild
        rows = {row.label: row for row in offer_type_table(results.dataset)}
        assert rows["No activity"].offer_count > 0
        assert rows["Activity"].offer_count > 0
        assert (rows["Activity"].average_payout_usd
                > rows["No activity"].average_payout_usd)

    def test_iip_summary_popularity_split(self, wild):
        _, _, results = wild
        rows = {row.iip_name: row for row in iip_summary_table(
            results.dataset, results.archive, VETTED_IIPS)}
        assert (rows["Fyber"].median_install_count
                > rows["RankApp"].median_install_count)
        assert rows["RankApp"].no_activity_fraction > 0.6

    def test_install_increase_comparison_runs(self, wild):
        _, _, results = wild
        comparison = install_increase_comparison(
            results.archive, results.dataset,
            results.vetted_packages(), results.unvetted_packages(),
            results.baseline_packages, results.baseline_window)
        assert comparison.unvetted.fraction > comparison.baseline.fraction

    def test_chart_comparison_runs(self, wild):
        _, _, results = wild
        comparison = top_chart_comparison(
            results.archive, results.dataset,
            results.vetted_packages(), results.unvetted_packages(),
            results.baseline_packages, results.baseline_window)
        assert comparison.vetted.total > 0

    def test_funding_comparison_runs(self, wild):
        _, _, results = wild
        comparison = funding_comparison(
            results.archive, results.dataset, results.snapshot,
            results.vetted_packages(), results.unvetted_packages(),
            results.baseline_packages, results.baseline_window[0])
        assert comparison.vetted.apps_matched > 0
        assert comparison.vetted.match_rate > comparison.unvetted.match_rate

    def test_ad_library_analysis_runs(self, wild):
        _, _, results = wild
        groups = split_packages_by_offer_type(results.dataset)
        distributions = {d.label: d for d in ad_library_distribution(
            results.apk_scan, groups)}
        assert (distributions["Activity offers"].fraction_with_at_least(5)
                > distributions["No activity offers"].fraction_with_at_least(5))

    def test_arbitrage_stats_runs(self, wild):
        _, _, results = wild
        stats = arbitrage_stats(results.dataset, VETTED_IIPS)
        assert stats.total_apps == len(results.dataset.unique_packages())

    def test_enforcement_never_hits_baseline(self, wild):
        _, _, results = wild
        observations = {o.label: o for o in enforcement_decreases(
            results.archive, {
                "Baseline": results.baseline_packages,
                "Vetted": results.vetted_packages(),
            })}
        assert observations["Baseline"].decreased == 0
