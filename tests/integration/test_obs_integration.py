"""Acceptance proofs for the observability subsystem.

Determinism: two wild runs with the same scenario seed export
byte-identical metrics + trace JSON (no wall clock, no global random
anywhere in the recording path).

Coverage: after one honey run and one wild run, counters exist from
every instrumented layer — fabric, HTTP client, HTTP servers, the
monitor — and both pipelines recorded stage spans.
"""

import pytest

from repro import (
    HoneyAppExperiment,
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)
from repro.obs import to_json

DAYS = 8
SCALE = 0.06


def run_wild(seed: int) -> World:
    world = World(seed=seed)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS)).run()
    return world


@pytest.fixture(scope="module")
def wild_world():
    return run_wild(11)


@pytest.fixture(scope="module")
def honey_world():
    world = World(seed=11)
    HoneyAppExperiment(world).run()
    return world


class TestDeterminism:
    def test_wild_exports_are_byte_identical_across_runs(self, wild_world):
        first = to_json(wild_world.obs)
        second = to_json(run_wild(11).obs)
        assert first.encode("utf-8") == second.encode("utf-8")

    def test_different_seeds_diverge(self, wild_world):
        assert to_json(wild_world.obs) != to_json(run_wild(12).obs)


class TestCoverage:
    def test_wild_run_populates_at_least_four_layers(self, wild_world):
        counters = wild_world.obs.metrics.counters()

        def layer_total(prefix):
            return sum(value for key, value in counters.items()
                       if key.startswith(prefix))

        for prefix in ("net.fabric.", "net.client.", "net.server.",
                       "net.proxy.", "monitor."):
            assert layer_total(prefix) > 0, f"no counters from {prefix}"

    def test_wild_run_records_stage_spans(self, wild_world):
        tracer = wild_world.obs.tracer
        (root,) = tracer.spans("wild.run")
        for stage in ("wild.scenario", "wild.milk", "wild.crawl",
                      "wild.finalize"):
            assert tracer.spans(stage), f"missing {stage} spans"
        assert all(span.parent_id == root.span_id
                   for span in tracer.spans("wild.milk"))
        assert tracer.spans("milk.run"), "milker should record run spans"

    def test_dedup_hits_counted(self, wild_world):
        metrics = wild_world.obs.metrics
        assert metrics.counter_total("monitor.dedup_hits") > 0
        assert metrics.counter_total("monitor.offers_new") > 0

    def test_honey_run_spans_one_child_per_iip(self, honey_world):
        tracer = honey_world.obs.tracer
        (root,) = tracer.spans("honey.run")
        campaigns = tracer.spans("honey.campaign")
        assert {span.label("iip") for span in campaigns} == {
            "Fyber", "ayeT-Studios", "RankApp"}
        assert all(span.parent_id == root.span_id for span in campaigns)

    def test_honey_run_counts_telemetry_and_requests(self, honey_world):
        metrics = honey_world.obs.metrics
        assert metrics.counter_total("honeyapp.telemetry_events") > 0
        assert metrics.counter_total("net.client.requests") > 0
        assert metrics.counter_total("net.server.requests") > 0
        assert metrics.counter_total("core.honey.installs_delivered") > 0

    def test_mean_ingests_exceed_unique_offers(self, wild_world):
        """Dedup proof at the metric level: new + dup == total ingested."""
        metrics = wild_world.obs.metrics
        new = metrics.counter_total("monitor.offers_new")
        dup = metrics.counter_total("monitor.dedup_hits")
        milked = metrics.counter_total("monitor.offers_milked")
        assert new + dup == milked
