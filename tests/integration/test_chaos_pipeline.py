"""Acceptance proofs for the chaos engine (the ISSUE's bar).

1. The wild pipeline completes without raising under the ``paper``
   chaos profile, with nonzero retries and faults-survived, and a
   populated coverage-loss summary.
2. Two chaos runs with the same (world seed, chaos seed) produce
   byte-identical reports AND byte-identical obs exports.
3. Chaos actually changes outcomes versus a clean run, and different
   chaos seeds diverge from each other.
"""

from __future__ import annotations

import pytest

from repro import (
    ChaosScenario,
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)
from repro.core import reports
from repro.analysis.characterize import offer_type_table
from repro.obs import to_json

pytestmark = pytest.mark.chaos

DAYS = 10
SCALE = 0.06


def run_wild(seed: int, chaos: ChaosScenario = None):
    world = World(seed=seed, chaos=chaos)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    results = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS)).run()
    return world, results


def render_report(results) -> str:
    """A deterministic textual report of the run (table 3 + summary)."""
    lines = [
        f"offers={results.dataset.offer_count()}",
        f"apps={len(results.dataset.unique_packages())}",
        f"milk_runs={results.milk_runs}",
        f"crawl_requests={results.crawl_requests}",
        reports.render_table3(offer_type_table(results.dataset)),
    ]
    lines.extend(results.coverage_loss.summary_lines())
    return "\n".join(lines)


@pytest.fixture(scope="module")
def chaos_run():
    return run_wild(11, ChaosScenario.profile("paper", seed=7))


class TestSurvival:
    def test_pipeline_completes_with_nonzero_chaos(self, chaos_run):
        world, results = chaos_run
        loss = results.coverage_loss
        assert results.dataset.offer_count() > 0
        assert loss.faults_injected + loss.server_faults > 0
        assert loss.retries > 0
        assert loss.faults_survived > 0

    def test_coverage_loss_matches_obs_counters(self, chaos_run):
        world, results = chaos_run
        metrics = world.obs.metrics
        loss = results.coverage_loss
        assert loss.faults_injected == metrics.counter_total(
            "net.fabric.faults_raised")
        assert loss.gave_up == metrics.counter_total("net.client.gave_up")
        assert loss.walls_lost == metrics.counter_total("monitor.walls_lost")
        assert loss.crawl_failures == metrics.counter_total(
            "monitor.crawl_failures")

    def test_summary_lines_render(self, chaos_run):
        _, results = chaos_run
        lines = results.coverage_loss.summary_lines()
        assert len(lines) == 4
        assert any("survived" in line for line in lines)


class TestDeterminism:
    def test_same_seed_chaos_runs_byte_identical(self, chaos_run):
        world_a, results_a = chaos_run
        world_b, results_b = run_wild(
            11, ChaosScenario.profile("paper", seed=7))
        assert render_report(results_a) == render_report(results_b)
        assert (to_json(world_a.obs).encode("utf-8")
                == to_json(world_b.obs).encode("utf-8"))

    def test_chaos_changes_the_run(self, chaos_run):
        world_chaos, _ = chaos_run
        world_clean, _ = run_wild(11)
        chaos_counters = world_chaos.obs.metrics.counters()
        clean_counters = world_clean.obs.metrics.counters()
        assert chaos_counters != clean_counters
        assert world_clean.obs.metrics.counter_total(
            "net.fabric.faults_raised") == 0

    def test_different_chaos_seeds_diverge(self, chaos_run):
        world_a, _ = chaos_run
        world_b, _ = run_wild(11, ChaosScenario.profile("paper", seed=8))
        assert to_json(world_a.obs) != to_json(world_b.obs)


class TestRetryQueue:
    def test_crawler_carries_failures_to_next_visit(self, chaos_run):
        world, results = chaos_run
        metrics = world.obs.metrics
        queued = metrics.counter_total("monitor.crawl_retry_queued")
        if queued == 0:
            pytest.skip("this schedule queued no crawl retries")
        drained = metrics.counter_total("monitor.crawl_retry_drained")
        assert drained > 0
