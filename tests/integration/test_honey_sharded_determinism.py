"""Sharded vs serial honey runs must be byte-identical.

The honey tentpole guarantee: fanning the three Section-3 IIP
campaigns across shards at the same seed produces the same rendered
report and the same observability export, byte for byte — including
under an active chaos profile, and regardless of whether TLS session
resumption is on (resumption only changes TLS-stream bytes, never the
HTTP payloads the analysis sees).
"""

import pytest

from repro import World
from repro.core import HoneyAppExperiment
from repro.core.reports import render_honey_report
from repro.net.chaos import ChaosScenario
from repro.obs import Observability
from repro.obs.export import to_json

SEED = 11
INSTALLS = 120


def run_honey(shards: int, chaos: ChaosScenario = None,
              tls_resumption: bool = True, backend: str = "thread"):
    world = World(seed=SEED, obs=Observability(), chaos=chaos)
    experiment = HoneyAppExperiment(world, installs_per_iip=INSTALLS,
                                    shards=shards, backend=backend,
                                    tls_resumption=tls_resumption)
    results = experiment.run()
    return world, results


class TestHoneyShardedDeterminism:
    def test_shards_4_matches_serial_byte_for_byte(self):
        world_1, results_1 = run_honey(1)
        world_4, results_4 = run_honey(4)
        assert to_json(world_4.obs) == to_json(world_1.obs)
        assert (render_honey_report(results_4)
                == render_honey_report(results_1))
        assert results_4.total_installs() == results_1.total_installs()
        assert (results_4.displayed_installs_after
                == results_1.displayed_installs_after)
        assert (results_4.enforcement_actions
                == results_1.enforcement_actions)

    @pytest.mark.chaos
    def test_shards_4_matches_serial_under_chaos(self):
        chaos = ChaosScenario.profile("paper", seed=7)
        world_1, results_1 = run_honey(1, chaos=chaos)
        world_4, results_4 = run_honey(4, chaos=chaos)
        assert to_json(world_4.obs) == to_json(world_1.obs)
        assert (render_honey_report(results_4)
                == render_honey_report(results_1))
        faults = world_1.obs.metrics.counter_total("net.fabric.faults_raised")
        assert faults > 0  # chaos actually fired

    def test_odd_shard_count_also_matches(self):
        world_1, results_1 = run_honey(1)
        world_3, results_3 = run_honey(3)
        assert to_json(world_3.obs) == to_json(world_1.obs)
        assert (render_honey_report(results_3)
                == render_honey_report(results_1))

    def test_process_backend_matches_serial_byte_for_byte(self):
        # Campaigns *write* shared domain state (installs, telemetry,
        # money, enforcement), so this also pins the domain-delta
        # replay: the parent world must end up with the exact ledgers a
        # serial run produces, not just the same obs export.
        world_1, results_1 = run_honey(1, backend="serial")
        world_p, results_p = run_honey(4, backend="process")
        assert to_json(world_p.obs) == to_json(world_1.obs)
        assert (render_honey_report(results_p)
                == render_honey_report(results_1))
        assert (results_p.displayed_installs_after
                == results_1.displayed_installs_after)
        assert (results_p.enforcement_actions
                == results_1.enforcement_actions)
        assert (len(world_p.telemetry.events)
                == len(world_1.telemetry.events))
        assert (world_p.money.state_dict()
                == world_1.money.state_dict())
        assert (world_p.mediator.total_conversions
                == world_1.mediator.total_conversions)
        assert (world_p.store.ledger.state_dict()
                == world_1.store.ledger.state_dict())

    @pytest.mark.chaos
    def test_process_backend_matches_serial_under_chaos(self):
        chaos = ChaosScenario.profile("paper", seed=7)
        world_1, results_1 = run_honey(1, chaos=chaos, backend="serial")
        world_p, results_p = run_honey(4, chaos=chaos, backend="process")
        assert to_json(world_p.obs) == to_json(world_1.obs)
        assert (render_honey_report(results_p)
                == render_honey_report(results_1))

    def test_recovery_rejects_process_backend(self):
        world = World(seed=SEED, obs=Observability())
        experiment = HoneyAppExperiment(world, installs_per_iip=INSTALLS,
                                        backend="process")
        with pytest.raises(ValueError, match="in-process backend"):
            experiment.run(recovery=object())

    def test_resumption_does_not_change_results(self):
        _, results_on = run_honey(1, tls_resumption=True)
        _, results_off = run_honey(1, tls_resumption=False)
        # Only the TLS wire bytes differ; the report is identical.
        assert (render_honey_report(results_on)
                == render_honey_report(results_off))

    def test_resumption_reduces_fabric_traffic(self):
        world_on, _ = run_honey(1, tls_resumption=True)
        world_off, _ = run_honey(1, tls_resumption=False)
        frames_on = world_on.obs.metrics.counter_total("net.fabric.frames")
        frames_off = world_off.obs.metrics.counter_total("net.fabric.frames")
        assert frames_on < frames_off
        assert world_on.obs.metrics.counter_total(
            "net.client.tls_resumptions") > 0
