"""Adversarial scenarios keep every determinism guarantee.

Two pins per profile: (1) sharded and process-backend runs match the
serial run byte for byte — scenario state (review pools, boost plans,
spike draws) must replay identically in worker replicas; (2) switching
a scenario *on* leaves the naive RNG prefix untouched, so the frozen
naive exports never move when adversarial code is merely present.
"""

import pytest

from repro import World, WildScenario, WildScenarioConfig
from repro.core import WildMeasurement, WildMeasurementConfig
from repro.obs import Observability
from repro.obs.export import to_json
from repro.scenarios import parse_scenario

SCALE = 0.03
DAYS = 10
SEED = 11

PROFILES = ("evasive", "fake-reviews", "download-fraud",
            "evasive,fake-reviews,download-fraud")


def run_wild(profile: str, shards: int, backend: str = "thread"):
    world = World(seed=SEED, obs=Observability())
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS,
        scenario=parse_scenario(profile)))
    scenario.build()
    hook = world.detection_hook("wild")
    results = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=shards, backend=backend),
        detection=hook).run()
    return world, scenario, results, hook


def fingerprint(world, scenario, results, hook):
    """Everything a scenario can influence, in comparable form."""
    reviews = [(r.reviewer_id, r.package, r.day, r.hour, r.rating)
               for r in world.store.reviews.all_reviews()]
    return (
        to_json(world.obs),
        [(o.offer_id, o.package, o.country, o.day)
         for o in results.observations],
        sorted(hook.finalize()),
        reviews,
        scenario.paid_reviewer_ids(),
        scenario.boost_plans(),
        sorted(hook.incentivized),
    )


class TestScenarioShardedDeterminism:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_shards_2_matches_serial(self, profile):
        serial = fingerprint(*run_wild(profile, shards=1, backend="serial"))
        sharded = fingerprint(*run_wild(profile, shards=2))
        assert sharded == serial

    def test_process_backend_matches_serial(self):
        # The composed profile exercises every scenario subsystem in
        # the spawned worker replicas at once.
        profile = "evasive,fake-reviews,download-fraud"
        serial = fingerprint(*run_wild(profile, shards=1, backend="serial"))
        process = fingerprint(*run_wild(profile, shards=2,
                                        backend="process"))
        assert process == serial


class TestNaivePrefixUnchanged:
    def offers(self, results):
        return [(o.offer_id, o.package, o.country, o.day)
                for o in results.observations]

    def test_store_scenarios_leave_offers_bit_identical(self):
        # Scenario randomness comes from dedicated streams keyed off
        # the "adversarial-scenario" seed; evasion and reviews change
        # detection events and store state, never the offer corpus.
        _, _, naive_results, _ = run_wild("naive", shards=1)
        _, _, adv_results, _ = run_wild("evasive,fake-reviews", shards=1)
        assert self.offers(adv_results) == self.offers(naive_results)

    def test_fraud_only_adds_offers(self):
        # Boost campaigns are real campaigns, so they surface as extra
        # offers — but every naive offer survives unchanged.
        _, _, naive_results, _ = run_wild("naive", shards=1)
        _, _, fraud_results, _ = run_wild("download-fraud", shards=1)
        naive_offers = self.offers(naive_results)
        fraud_offers = self.offers(fraud_results)
        assert set(naive_offers) < set(fraud_offers)
