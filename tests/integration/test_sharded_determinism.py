"""Sharded vs serial wild runs must be byte-identical.

The tentpole guarantee of ``repro.parallel``: running the milk/crawl
phases on 1 shard or N shards at the same seed — on any backend
(serial, thread, or spawned worker processes) — produces the same
dataset, the same archive, and the same observability export, byte for
byte — including under an active chaos profile, where fault decisions
are flow-scoped rather than arrival-ordered.
"""

import pytest

from repro import World, WildScenario, WildScenarioConfig
from repro.core import WildMeasurement, WildMeasurementConfig
from repro.net.chaos import ChaosScenario
from repro.obs import Observability
from repro.obs.export import to_json

SCALE = 0.08
DAYS = 16
SEED = 11


def run_wild(shards: int, chaos: ChaosScenario = None,
             backend: str = "thread"):
    world = World(seed=SEED, obs=Observability(), chaos=chaos)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    results = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=shards, backend=backend)).run()
    return world, results


def offers_key(results):
    return [(o.offer_id, o.package, o.country, o.day)
            for o in results.observations]


class TestShardedDeterminism:
    def test_shards_4_matches_serial_byte_for_byte(self):
        world_1, results_1 = run_wild(1)
        world_4, results_4 = run_wild(4)
        assert to_json(world_4.obs) == to_json(world_1.obs)
        assert offers_key(results_4) == offers_key(results_1)
        assert (results_4.dataset.offer_count()
                == results_1.dataset.offer_count())
        assert results_4.archive.crawl_days == results_1.archive.crawl_days
        assert results_4.crawl_requests == results_1.crawl_requests
        assert results_4.milk_runs == results_1.milk_runs

    @pytest.mark.chaos
    def test_shards_4_matches_serial_under_chaos(self):
        world_1, results_1 = run_wild(
            1, chaos=ChaosScenario.profile("paper", seed=7))
        world_4, results_4 = run_wild(
            4, chaos=ChaosScenario.profile("paper", seed=7))
        assert to_json(world_4.obs) == to_json(world_1.obs)
        assert offers_key(results_4) == offers_key(results_1)
        loss_1, loss_4 = results_1.coverage_loss, results_4.coverage_loss
        assert loss_4 == loss_1
        assert loss_1.faults_injected > 0  # chaos actually fired

    def test_odd_shard_count_also_matches(self):
        world_1, results_1 = run_wild(1)
        world_3, results_3 = run_wild(3)
        assert to_json(world_3.obs) == to_json(world_1.obs)
        assert offers_key(results_3) == offers_key(results_1)


class TestBackendMatrix:
    """Serial, thread, and process backends agree byte for byte.

    The process backend takes a structurally different path — spawned
    split-brain world replicas, pickled result envelopes, post-barrier
    world-delta merges (DESIGN.md §8) — so it gets its own end-to-end
    equivalence pin against the in-process backends."""

    def test_serial_backend_matches_thread(self):
        world_t, results_t = run_wild(4, backend="thread")
        world_s, results_s = run_wild(4, backend="serial")
        assert to_json(world_s.obs) == to_json(world_t.obs)
        assert offers_key(results_s) == offers_key(results_t)

    def test_process_backend_matches_serial_byte_for_byte(self):
        world_1, results_1 = run_wild(1, backend="serial")
        world_p, results_p = run_wild(4, backend="process")
        assert to_json(world_p.obs) == to_json(world_1.obs)
        assert offers_key(results_p) == offers_key(results_1)
        assert (results_p.dataset.offer_count()
                == results_1.dataset.offer_count())
        assert results_p.crawl_requests == results_1.crawl_requests
        assert results_p.milk_runs == results_1.milk_runs

    @pytest.mark.chaos
    def test_process_backend_matches_serial_under_chaos(self):
        world_1, results_1 = run_wild(
            1, chaos=ChaosScenario.profile("paper", seed=7),
            backend="serial")
        world_p, results_p = run_wild(
            4, chaos=ChaosScenario.profile("paper", seed=7),
            backend="process")
        assert to_json(world_p.obs) == to_json(world_1.obs)
        assert offers_key(results_p) == offers_key(results_1)
        assert results_p.coverage_loss == results_1.coverage_loss
        assert results_1.coverage_loss.faults_injected > 0
