"""Streamed (``batch_devices``) vs materialised runs: byte-identical.

The streaming pipeline's contract: turning on chunked analysis folds
and disk-spilled observation/archive logs changes *where* the corpus
lives, never *what* the run produces.  At the same seed, a streamed
run's observability export, offer log, dataset, and serialised data
release equal the materialised run's byte for byte — clean and under
chaos, on one shard or four, thread or process backend.
"""

import pytest

from repro import World, WildScenario, WildScenarioConfig
from repro.core import WildMeasurement, WildMeasurementConfig
from repro.monitor.storage import save_archive, save_dataset
from repro.net.chaos import ChaosScenario
from repro.obs import Observability
from repro.obs.export import to_json

SCALE = 0.08
DAYS = 16
SEED = 11
BATCH = 7  # tiny chunks: every fold crosses many chunk boundaries


def run_wild(batch, spill_dir=None, shards=1, backend="thread",
             chaos=None):
    world = World(seed=SEED, obs=Observability(), chaos=chaos)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    results = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=shards, backend=backend,
        batch_devices=batch,
        spill_dir=str(spill_dir) if spill_dir else None)).run()
    return world, results


def offers_key(results):
    return [(o.offer_id, o.package, o.country, o.day)
            for o in results.observations]


def export_bytes(results, tmp_path, tag):
    offers = tmp_path / f"offers-{tag}.json"
    archive = tmp_path / f"archive-{tag}.json"
    save_dataset(results.dataset, offers)
    save_archive(results.archive, archive)
    return offers.read_bytes(), archive.read_bytes()


class TestStreamedEqualsMaterialised:
    def test_clean_run_byte_identical(self, tmp_path):
        world_m, results_m = run_wild(batch=0)
        world_s, results_s = run_wild(batch=BATCH,
                                      spill_dir=tmp_path / "spill")
        assert to_json(world_s.obs) == to_json(world_m.obs)
        assert offers_key(results_s) == offers_key(results_m)
        assert (export_bytes(results_s, tmp_path, "streamed")
                == export_bytes(results_m, tmp_path, "materialised"))

    @pytest.mark.chaos
    def test_chaos_run_byte_identical(self, tmp_path):
        chaos = ChaosScenario.profile("paper", seed=7)
        world_m, results_m = run_wild(batch=0, chaos=chaos)
        chaos = ChaosScenario.profile("paper", seed=7)
        world_s, results_s = run_wild(batch=BATCH, chaos=chaos,
                                      spill_dir=tmp_path / "spill")
        assert to_json(world_s.obs) == to_json(world_m.obs)
        assert offers_key(results_s) == offers_key(results_m)
        assert results_s.coverage_loss == results_m.coverage_loss
        assert results_m.coverage_loss.faults_injected > 0
        assert (export_bytes(results_s, tmp_path, "streamed")
                == export_bytes(results_m, tmp_path, "materialised"))

    def test_streamed_shards_4_matches_materialised_serial(self,
                                                           tmp_path):
        world_m, results_m = run_wild(batch=0, shards=1)
        world_s, results_s = run_wild(batch=BATCH, shards=4,
                                      spill_dir=tmp_path / "spill")
        assert to_json(world_s.obs) == to_json(world_m.obs)
        assert offers_key(results_s) == offers_key(results_m)

    def test_streamed_process_backend_matches_materialised_serial(
            self, tmp_path):
        world_m, results_m = run_wild(batch=0, backend="serial")
        world_s, results_s = run_wild(batch=BATCH, shards=4,
                                      backend="process",
                                      spill_dir=tmp_path / "spill")
        assert to_json(world_s.obs) == to_json(world_m.obs)
        assert offers_key(results_s) == offers_key(results_m)
        assert (export_bytes(results_s, tmp_path, "streamed")
                == export_bytes(results_m, tmp_path, "materialised"))

    def test_batch_size_is_irrelevant(self, tmp_path):
        """Any chunk size folds to the same answer: 1-row chunks are
        the degenerate worst case for group-order stability."""
        world_a, results_a = run_wild(batch=1,
                                      spill_dir=tmp_path / "spill-1")
        world_b, results_b = run_wild(batch=1000,
                                      spill_dir=tmp_path / "spill-1000")
        assert to_json(world_a.obs) == to_json(world_b.obs)
        assert (export_bytes(results_a, tmp_path, "one")
                == export_bytes(results_b, tmp_path, "thousand"))
