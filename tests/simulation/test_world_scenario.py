"""World wiring and wild-scenario generation tests."""

import pytest

from repro.iip.offers import OfferCategory
from repro.iip.registry import UNVETTED_IIPS, VETTED_IIPS
from repro.playstore.ledger import InstallSource
from repro.simulation import paperdata
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World

SCALE = 0.08


@pytest.fixture(scope="module")
def built():
    world = World(seed=11)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=40))
    scenario.build()
    return world, scenario


class TestWorldWiring:
    def test_all_seven_walls_listening(self, built):
        world, _ = built
        for name, wall in world.walls.items():
            assert world.fabric.is_listening(wall.hostname, 443)

    def test_play_frontend_listening(self, built):
        world, _ = built
        assert world.fabric.is_listening("play.google.example", 443)

    def test_affiliates_registered_per_table2(self, built):
        world, _ = built
        assert "com.ayet.cashpirate" in world.platforms["Fyber"].affiliate_ids
        assert "eu.makemoney" in world.platforms["RankApp"].affiliate_ids
        assert ("com.ayet.cashpirate"
                not in world.platforms["RankApp"].affiliate_ids)

    def test_device_trust_store_is_fresh(self, built):
        world, _ = built
        store_a = world.device_trust_store()
        store_b = world.device_trust_store()
        assert store_a is not store_b
        assert store_a.trusts("GlobalTrust Root CA")


class TestScenarioGeneration:
    def test_app_counts_scale(self, built):
        _, scenario = built
        expected = sum(
            max(3, round(calibration.app_count * SCALE))
            for calibration in paperdata.TABLE4.values())
        # Overlap makes actual app count smaller than total memberships.
        assert 0.5 * expected < len(scenario.advertised) <= expected

    def test_every_advertised_app_has_campaigns(self, built):
        _, scenario = built
        assert all(app.campaigns for app in scenario.advertised)

    def test_campaigns_live_within_measurement_window(self, built):
        _, scenario = built
        for app in scenario.advertised:
            for campaign in app.campaigns:
                assert 0 <= campaign.offer.start_day < 40
                assert campaign.offer.end_day < 40

    def test_rankapp_offers_are_no_activity_dominated(self, built):
        _, scenario = built
        rank_offers = [
            campaign.offer
            for app in scenario.advertised
            for campaign in app.campaigns
            if campaign.offer.iip_name == "RankApp"
        ]
        assert rank_offers
        no_activity = sum(o.category is OfferCategory.NO_ACTIVITY
                          for o in rank_offers)
        assert no_activity / len(rank_offers) > 0.7

    def test_campaign_volumes_follow_budget_tiers(self, built):
        _, scenario = built
        for app in scenario.advertised:
            big_budget_app = app.initial_installs > 500_000
            for campaign in app.campaigns:
                vetted = campaign.offer.iip_name not in UNVETTED_IIPS
                if vetted or big_budget_app:
                    assert campaign.installs_purchased >= 2000
                else:
                    assert campaign.installs_purchased <= 400

    def test_initial_installs_recorded(self, built):
        world, scenario = built
        app = scenario.advertised[0]
        assert (world.store.ledger.total_installs(app.package, 0)
                >= app.initial_installs)

    def test_apks_built_for_every_app(self, built):
        world, scenario = built
        for app in scenario.advertised:
            assert app.package in world.apks
        for app in scenario.baseline:
            assert app.package in world.apks

    def test_crunchbase_populated(self, built):
        world, _ = built
        assert world.crunchbase.organization_count() > 0

    def test_deterministic_generation(self):
        def fingerprint():
            world = World(seed=99)
            scenario = WildScenario(world, WildScenarioConfig(
                scale=0.05, measurement_days=30))
            scenario.build()
            return [
                (app.package, app.initial_installs, tuple(app.iips),
                 tuple(c.offer.description for c in app.campaigns))
                for app in scenario.advertised
            ]

        assert fingerprint() == fingerprint()

    def test_daily_dynamics_record_installs_and_engagement(self, built):
        world, scenario = built
        scenario.run_day(0)
        scenario.run_day(1)
        recorded = sum(
            world.store.ledger.daily_installs(app.package, 1)[
                InstallSource.INCENTIVIZED]
            for app in scenario.advertised)
        assert recorded > 0
        engaged = sum(
            world.store.engagement.for_day(app.package, 1).active_users
            for app in scenario.baseline)
        assert engaged > 0
