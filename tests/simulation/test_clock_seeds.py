"""Clock and seed-stream tests."""

import pytest

from repro.simulation.clock import SimulationClock
from repro.simulation.seeds import SeedSequence


class TestClock:
    def test_starts_at_zero(self):
        assert SimulationClock().day == 0

    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance() == 1
        assert clock.advance(5) == 6
        assert clock.now() == 6

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            SimulationClock().advance(-1)
        with pytest.raises(ValueError):
            SimulationClock(start_day=-1)


class TestSeedSequence:
    def test_streams_are_deterministic(self):
        a = SeedSequence(42).rng("playstore")
        b = SeedSequence(42).rng("playstore")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_by_name(self):
        seeds = SeedSequence(42)
        assert seeds.seed_for("playstore") != seeds.seed_for("iip")

    def test_different_roots_differ(self):
        assert (SeedSequence(1).seed_for("x")
                != SeedSequence(2).seed_for("x"))

    def test_child_sequences(self):
        child = SeedSequence(42).child("honey")
        assert child.seed_for("a") == SeedSequence(42).child("honey").seed_for("a")
        assert child.seed_for("a") != SeedSequence(42).seed_for("a")
