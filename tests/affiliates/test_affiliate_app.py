"""Affiliate app runtime, UI tree, and registry tests."""

import random

import pytest

from repro.affiliates.app import AffiliateAppRuntime, AffiliateAppSpec
from repro.affiliates.registry import (
    AFFILIATE_SPECS,
    INSTRUMENTED_AFFILIATES,
    affiliates_integrating,
    has_money_keyword,
    iips_integrated_by,
)
from repro.affiliates.ui import OfferListView, TabView, View
from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.offers import OfferCategory, tasks_for
from repro.iip.offerwall import OfferWallServer
from repro.iip.registry import build_platforms
from repro.net.ip import AsnDatabase
from repro.users.devices import DeviceFactory
from repro.users.worker import Worker, WorkerBehavior
from tests.conftest import make_client
from tests.iip.test_platform import make_campaign, register_and_fund


@pytest.fixture()
def wired(fabric, root_ca, trust_store, rng):
    """Fyber + ayeT walls live on the fabric, with live campaigns."""
    ledger = MoneyLedger()
    mediator = AttributionMediator()
    platforms = build_platforms(ledger, mediator)
    walls = {}
    for name in ("Fyber", "ayeT-Studios"):
        platform = platforms[name]
        register_and_fund(ledger, platform, developer_id=f"dev-{name}",
                          funds=10000.0)
        for index in range(30):  # enough offers to force pagination
            campaign = make_campaign(platform, developer_id=f"dev-{name}",
                                     installs=50, payout=0.06)
            platform.launch(campaign.campaign_id, day=0)
        walls[name] = OfferWallServer(fabric, platform, root_ca, rng,
                                      current_day=lambda: 0)
    spec = AffiliateAppSpec(
        package="com.ayet.cashpirate", title="CashPirate",
        installs_display="1M+", integrated_iips=("Fyber", "ayeT-Studios"),
        currency_name="pirate coins", points_per_usd=2500.0)
    for wall in walls.values():
        wall.register_affiliate(spec.wall_config())
    client = make_client(fabric, trust_store, rng)
    runtime = AffiliateAppRuntime(spec, client, walls, platforms)
    return runtime, platforms, ledger


class TestUiTree:
    def test_view_walk_and_find(self):
        root = View("root", "FrameLayout")
        child = root.add(View("list", "OfferListView"))
        child.add(View("card0", "OfferCardView", text="x"))
        assert len(list(root.walk())) == 3
        assert root.find_by_id("card0").text == "x"
        assert root.find_by_id("nope") is None
        assert [v.view_id for v in root.find_by_class("OfferCardView")] == ["card0"]


class TestRuntime:
    def test_open_builds_one_tab_per_wall(self, wired):
        runtime, _, _ = wired
        root = runtime.open()
        tabs = root.find_by_class("TabView")
        assert {tab.iip_name for tab in tabs} == {"Fyber", "ayeT-Studios"}

    def test_tab_select_loads_first_page(self, wired):
        runtime, _, _ = wired
        runtime.open()
        runtime.select_tab("Fyber")
        offers = runtime.visible_offers()
        assert len(offers) == 20  # one wall page
        assert all(offer.iip_name == "Fyber" for offer in offers)
        assert all(offer.currency == "pirate coins" for offer in offers)

    def test_scroll_paginates_to_exhaustion(self, wired):
        runtime, _, _ = wired
        runtime.open()
        runtime.select_tab("Fyber")
        scrolls = 0
        while runtime.scroll():
            scrolls += 1
            assert scrolls < 10  # safety
        assert len(runtime.visible_offers()) == 30
        offer_list = runtime.root.find_by_id("offer_list")
        assert isinstance(offer_list, OfferListView)
        assert offer_list.fully_loaded
        assert len(offer_list.cards) == 30

    def test_offers_across_tabs_accumulate(self, wired):
        runtime, _, _ = wired
        runtime.open()
        for tab in ("Fyber", "ayeT-Studios"):
            runtime.select_tab(tab)
            while runtime.scroll():
                pass
        assert len(runtime.all_loaded_offers()) == 60

    def test_unknown_tab_rejected(self, wired):
        runtime, _, _ = wired
        runtime.open()
        with pytest.raises(KeyError):
            runtime.select_tab("RankApp")

    def test_points_reflect_wall_conversion(self, wired):
        runtime, _, _ = wired
        runtime.open()
        runtime.select_tab("Fyber")
        offer = runtime.visible_offers()[0]
        assert offer.points == 150  # $0.06 * 2500 points/USD

    def test_complete_offer_pays_worker(self, wired, rng):
        runtime, platforms, ledger = wired
        runtime.open()
        runtime.select_tab("Fyber")
        wall_offer = runtime.visible_offers()[0]
        factory = DeviceFactory(AsnDatabase(), rng)
        worker = Worker("w1", factory.real_phone("IN"), WorkerBehavior())
        campaign = platforms["Fyber"].campaign_for_offer(wall_offer.offer_id)
        result = worker.work_offer(campaign.offer, day=0, rng=rng)
        paid = runtime.complete_offer(wall_offer, worker, result, day=0)
        assert paid
        assert worker.points_earned == 150
        assert ledger.wallet("w1").balance_usd == pytest.approx(0.06)
        # A second report for the same device is rejected by attribution.
        assert not runtime.complete_offer(wall_offer, worker, result, day=0)

    def test_spec_requires_matching_walls(self, wired, fabric, trust_store, rng):
        runtime, platforms, _ = wired
        spec = AffiliateAppSpec(
            package="com.other.app", title="Other", installs_display="1K+",
            integrated_iips=("RankApp",), currency_name="x", points_per_usd=10)
        client = make_client(fabric, trust_store, rng)
        with pytest.raises(ValueError, match="walls missing"):
            AffiliateAppRuntime(spec, client, {}, platforms)


class TestRegistry:
    def test_eight_instrumented_apps(self):
        assert len(INSTRUMENTED_AFFILIATES) == 8
        assert "com.mobvantage.CashForApps" in INSTRUMENTED_AFFILIATES

    def test_table2_integrations(self):
        assert iips_integrated_by("com.mobvantage.CashForApps") == (
            "Fyber", "AdGem", "HangMyAds", "ayeT-Studios")
        assert iips_integrated_by("proxima.moneyapp.android") == ("Fyber",)
        assert iips_integrated_by("eu.makemoney") == ("AdscendMedia", "RankApp")

    def test_every_instrumented_app_has_a_vetted_wall(self):
        vetted = {"Fyber", "OfferToro", "AdscendMedia", "HangMyAds", "AdGem"}
        for package in INSTRUMENTED_AFFILIATES:
            assert set(iips_integrated_by(package)) & vetted

    def test_seven_iips_covered(self):
        covered = set()
        for package in INSTRUMENTED_AFFILIATES:
            covered.update(iips_integrated_by(package))
        assert len(covered) == 7

    def test_affiliates_integrating(self):
        assert "proxima.moneyapp.android" in affiliates_integrating("Fyber")
        assert affiliates_integrating("RankApp") == [
            "eu.makemoney", "com.growrich.makemoney"]

    def test_money_keyword_detector(self):
        assert has_money_keyword("com.ayet.cashpirate")
        assert has_money_keyword("eu.makemoney")
        assert has_money_keyword("com.rewardzone.app")
        assert not has_money_keyword("com.whatsapp")

    def test_specs_have_positive_rates(self):
        for spec in AFFILIATE_SPECS.values():
            assert spec.points_per_usd > 0
            assert 0 < spec.user_share <= 1
