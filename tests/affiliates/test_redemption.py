"""Gift-card redemption tests (paper footnote 6)."""

import random

import pytest

from repro.affiliates.app import AffiliateAppSpec
from repro.affiliates.redemption import (
    GIFT_CARD_DENOMINATIONS,
    RedemptionError,
    RedemptionService,
    points_per_usd_from_menu,
)
from repro.affiliates.registry import AFFILIATE_SPECS
from repro.net.ip import AsnDatabase
from repro.users.devices import DeviceFactory
from repro.users.worker import Worker, WorkerBehavior

SPEC = AffiliateAppSpec(
    package="com.bigcash.app", title="BigCash", installs_display="1M+",
    integrated_iips=("OfferToro",), currency_name="points",
    points_per_usd=10_000.0)


def make_worker(points=0.0):
    factory = DeviceFactory(AsnDatabase(), random.Random(3))
    worker = Worker("w1", factory.real_phone("PH"), WorkerBehavior())
    worker.points_earned = points
    return worker


class TestMenu:
    def test_menu_lists_all_brands(self):
        service = RedemptionService(SPEC)
        cards = {entry.card for entry in service.menu()}
        assert cards == set(GIFT_CARD_DENOMINATIONS)

    def test_menu_sorted_by_price(self):
        prices = [entry.points_required
                  for entry in RedemptionService(SPEC).menu()]
        assert prices == sorted(prices)

    def test_minimum_filters_small_cards(self):
        service = RedemptionService(SPEC, minimum_usd=5.0)
        assert all(entry.amount_usd >= 5.0 for entry in service.menu())

    def test_points_prices_follow_exchange_rate(self):
        for entry in RedemptionService(SPEC).menu():
            assert entry.points_required == pytest.approx(
                entry.amount_usd * 10_000, rel=0.01)


class TestRedeem:
    def test_successful_redemption_deducts_points(self):
        service = RedemptionService(SPEC)
        worker = make_worker(points=60_000)
        card = service.redeem(worker, "PayPal", 5.0)
        assert card.amount_usd == 5.0
        assert card.worker_id == "w1"
        assert worker.points_earned == pytest.approx(10_000)
        assert service.issued() == [card]

    def test_insufficient_points_rejected(self):
        service = RedemptionService(SPEC)
        worker = make_worker(points=100)
        with pytest.raises(RedemptionError, match="needs"):
            service.redeem(worker, "PayPal", 5.0)

    def test_unknown_card_rejected(self):
        with pytest.raises(RedemptionError, match="unknown card"):
            RedemptionService(SPEC).redeem(make_worker(1e6), "Steam", 5.0)

    def test_unoffered_denomination_rejected(self):
        with pytest.raises(RedemptionError, match="not offered"):
            RedemptionService(SPEC).redeem(make_worker(1e6), "Amazon", 3.0)

    def test_below_minimum_rejected(self):
        service = RedemptionService(SPEC, minimum_usd=5.0)
        with pytest.raises(RedemptionError, match="minimum"):
            service.redeem(make_worker(1e6), "PayPal", 1.0)

    def test_card_codes_unique(self):
        service = RedemptionService(SPEC)
        worker = make_worker(points=1e6)
        codes = {service.redeem(worker, "PayPal", 1.0).code
                 for _ in range(10)}
        assert len(codes) == 10


class TestRateRecovery:
    """The paper's normalisation: read the exchange rate off the menu."""

    def test_recovers_spec_rate(self):
        menu = RedemptionService(SPEC).menu()
        rate = points_per_usd_from_menu(menu)
        assert rate == pytest.approx(10_000, rel=0.01)

    def test_recovers_rate_for_every_registry_app(self):
        for spec in AFFILIATE_SPECS.values():
            menu = RedemptionService(spec).menu()
            rate = points_per_usd_from_menu(menu)
            assert rate == pytest.approx(spec.points_per_usd, rel=0.02)

    def test_empty_menu_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            points_per_usd_from_menu([])

    def test_inconsistent_menu_detected(self):
        from repro.affiliates.redemption import MenuEntry
        menu = [MenuEntry("PayPal", 1.0, 1000),
                MenuEntry("PayPal", 5.0, 9000)]  # punitive small cards
        with pytest.raises(ValueError, match="inconsistent"):
            points_per_usd_from_menu(menu)
