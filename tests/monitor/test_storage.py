"""Dataset persistence tests (the public data release)."""

import json

import pytest

from repro.monitor.crawler import ChartAppearance, CrawlArchive
from repro.monitor.dataset import OfferDataset
from repro.monitor.storage import (
    DatasetFormatError,
    load_archive,
    load_offer_records,
    rehydrate_dataset,
    save_archive,
    save_dataset,
)
from tests.analysis.test_tables import SPEC, build_dataset, obs, profile


class TestOfferDatasetRoundTrip:
    def test_round_trip_preserves_records(self, tmp_path):
        dataset = build_dataset()
        path = tmp_path / "offers.json"
        count = save_dataset(dataset, path)
        assert count == dataset.offer_count()
        records = load_offer_records(path)
        reloaded = rehydrate_dataset(records)
        assert reloaded.offer_count() == dataset.offer_count()
        assert reloaded.unique_packages() == dataset.unique_packages()
        original = {(r.iip_name, r.offer_id): r for r in dataset.offers()}
        for record in reloaded.offers():
            source = original[(record.iip_name, record.offer_id)]
            assert record.description == source.description
            assert record.payout_usd == pytest.approx(source.payout_usd)
            assert record.countries == source.countries

    def test_rehydrated_dataset_supports_analysis(self, tmp_path):
        from repro.analysis.characterize import offer_type_table
        dataset = build_dataset()
        path = tmp_path / "offers.json"
        save_dataset(dataset, path)
        reloaded = rehydrate_dataset(load_offer_records(path))
        rows = offer_type_table(reloaded)
        assert rows == offer_type_table(dataset)

    def test_file_is_stable_json(self, tmp_path):
        dataset = build_dataset()
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_dataset(dataset, path_a)
        save_dataset(dataset, path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "something_else",
                                    "format_version": 1}))
        with pytest.raises(DatasetFormatError, match="not an offer dataset"):
            load_offer_records(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "offer_dataset",
                                    "format_version": 99, "offers": []}))
        with pytest.raises(DatasetFormatError, match="version"):
            load_offer_records(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetFormatError):
            load_offer_records(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "kind": "offer_dataset", "format_version": 1,
            "offers": [{"iip": "Fyber"}]}))
        with pytest.raises(DatasetFormatError, match="malformed"):
            load_offer_records(path)


class TestArchiveRoundTrip:
    def _archive(self):
        archive = CrawlArchive()
        for day, installs in ((0, 100), (2, 500)):
            archive.add_profile(profile("com.app.one", day, installs,
                                        website="https://dev.example"))
        archive.add_chart("top_free", 2, [
            ChartAppearance("com.app.one", "top_free", 2, 7, 0.97)])
        archive.note_crawl_day(0)
        archive.note_crawl_day(2)
        return archive

    def test_round_trip(self, tmp_path):
        archive = self._archive()
        path = tmp_path / "archive.json"
        count = save_archive(archive, path)
        assert count == 2
        reloaded = load_archive(path)
        assert reloaded.crawl_days == [0, 2]
        assert reloaded.install_series("com.app.one") == [(0, 100), (2, 500)]
        assert reloaded.charted_on("com.app.one", 2)
        snapshot = reloaded.profile("com.app.one", 0)
        assert snapshot.developer_website == "https://dev.example"

    def test_rank_timeline_survives(self, tmp_path):
        archive = self._archive()
        path = tmp_path / "archive.json"
        save_archive(archive, path)
        reloaded = load_archive(path)
        assert reloaded.rank_timeline("com.app.one", "top_free") == [(2, 0.97)]

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "offer_dataset",
                                    "format_version": 1}))
        with pytest.raises(DatasetFormatError):
            load_archive(path)


class TestDatasetIngestProperties:
    """Ingestion invariants, via hypothesis."""

    def test_ingest_is_idempotent(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.monitor.dataset import ObservedOffer, OfferDataset

        @settings(max_examples=30)
        @given(st.lists(st.tuples(
            st.sampled_from(["Fyber", "RankApp"]),
            st.integers(min_value=0, max_value=5),    # offer index
            st.integers(min_value=0, max_value=40),   # day
            st.sampled_from(["US", "DE", None]),
        ), max_size=30))
        def check(observations):
            def build(order):
                dataset = OfferDataset({"com.aff.app": SPEC})
                for iip, index, day, country in order:
                    dataset.ingest(ObservedOffer(
                        iip_name=iip, offer_id=f"o{index}",
                        package=f"com.app.n{index}.x", app_title="T",
                        play_store_url="u", description="Install and Launch",
                        payout_points=100, currency="coins",
                        affiliate_package="com.aff.app", country=country,
                        day=day))
                return dataset

            once = build(observations)
            twice = build(observations + observations)
            assert once.offer_count() == twice.offer_count()
            for a, b in zip(once.offers(), twice.offers()):
                assert (a.first_seen_day, a.last_seen_day) == \
                    (b.first_seen_day, b.last_seen_day)
                assert a.countries == b.countries

        check()

    def test_window_invariants(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.monitor.dataset import ObservedOffer, OfferDataset

        @settings(max_examples=30)
        @given(st.lists(st.integers(min_value=0, max_value=100),
                        min_size=1, max_size=20))
        def check(days):
            dataset = OfferDataset({"com.aff.app": SPEC})
            for day in days:
                dataset.ingest(ObservedOffer(
                    iip_name="Fyber", offer_id="o1", package="com.app.x.y",
                    app_title="T", play_store_url="u",
                    description="Install and Launch", payout_points=100,
                    currency="coins", affiliate_package="com.aff.app",
                    country=None, day=day))
            record = dataset.offers()[0]
            assert record.first_seen_day == min(days)
            assert record.last_seen_day == max(days)
            start, end = dataset.campaign_window("com.app.x.y")
            assert (start, end) == (min(days), max(days))

        check()
