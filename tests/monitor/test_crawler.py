"""Crawler + archive tests against the Play front end."""

import pytest

from repro.monitor.crawler import CrawlArchive, PlayStoreCrawler
from repro.playstore.catalog import AppListing, Developer
from repro.playstore.engagement import DailyEngagement
from repro.playstore.frontend import PLAY_HOST, PlayStoreFrontend
from repro.playstore.ledger import InstallSource
from repro.playstore.store import PlayStore
from tests.conftest import make_client


@pytest.fixture()
def world(fabric, root_ca, rng, trust_store):
    store = PlayStore()
    developer = Developer(developer_id="dev1", name="Example", country="US")
    for package, genre in (("com.app.alpha", "Tools"),
                           ("com.app.beta", "Puzzle")):
        store.publish(AppListing(package=package, title=package, genre=genre,
                                 developer=developer, release_day=0))
    clock = {"day": 0}
    PlayStoreFrontend(fabric, store, root_ca, rng,
                      current_day=lambda: clock["day"])
    client = make_client(fabric, trust_store, rng)
    crawler = PlayStoreCrawler(client, PLAY_HOST)
    return store, clock, crawler


class TestCrawler:
    def test_cadence(self, world):
        _, _, crawler = world
        assert crawler.should_crawl(0)
        assert not crawler.should_crawl(1)
        assert crawler.should_crawl(2)
        assert crawler.should_crawl(11, start_day=1)

    def test_profile_crawl(self, world):
        store, clock, crawler = world
        store.record_install_batch("com.app.alpha", 0, InstallSource.ORGANIC, 777)
        snapshot = crawler.crawl_profile("com.app.alpha")
        assert snapshot.installs_floor == 500
        assert snapshot.developer_id == "dev1"

    def test_unknown_profile_counts_as_failure(self, world):
        _, _, crawler = world
        assert crawler.crawl_profile("com.ghost") is None
        assert crawler.failures == 1

    def test_install_series_across_days(self, world):
        store, clock, crawler = world
        for day, count in ((0, 400), (2, 700), (4, 0)):
            if count:
                store.record_install_batch("com.app.alpha", day,
                                           InstallSource.ORGANIC, count)
            clock["day"] = day
            crawler.crawl_everything(["com.app.alpha"])
        series = crawler.archive.install_series("com.app.alpha")
        assert series == [(0, 100), (2, 1000), (4, 1000)]
        assert crawler.archive.crawl_days == [0, 2, 4]

    def test_chart_crawl_and_timeline(self, world):
        store, clock, crawler = world
        # App enters the games chart on day 2 only.
        store.record_engagement("com.app.beta", 2, DailyEngagement(active_users=50))
        for day in (0, 2, 10):
            clock["day"] = day
            crawler.crawl_everything([])
        appearances = crawler.archive.chart_appearances("com.app.beta")
        assert {a.day for a in appearances} == {2}
        assert {a.chart for a in appearances} == {"top_free", "top_games"}
        timeline = crawler.archive.rank_timeline("com.app.beta", "top_games")
        assert timeline == [(0, None), (2, 1.0), (10, None)]
        assert crawler.archive.charted_on("com.app.beta", 2)
        assert not crawler.archive.charted_on("com.app.beta", 0)

    def test_first_and_last_profiles(self, world):
        store, clock, crawler = world
        store.record_install_batch("com.app.alpha", 0, InstallSource.ORGANIC, 100)
        clock["day"] = 0
        crawler.crawl_profile("com.app.alpha")
        store.record_install_batch("com.app.alpha", 3, InstallSource.ORGANIC, 5000)
        clock["day"] = 4
        crawler.crawl_profile("com.app.alpha")
        archive = crawler.archive
        assert archive.first_profile("com.app.alpha").installs_floor == 100
        assert archive.last_profile("com.app.alpha").installs_floor == 5000
        assert archive.first_profile("com.ghost") is None

    def test_bad_cadence_rejected(self, world):
        _, _, crawler = world
        with pytest.raises(ValueError):
            PlayStoreCrawler(None, PLAY_HOST, cadence_days=0)
