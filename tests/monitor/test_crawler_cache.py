"""The crawler's (package, day) request cache and queue dedup.

Assertions run against two independent sources: the crawler's own
``crawler.cache_hits`` / ``cache_misses`` counters, and the fabric's
accepted-connection count for the Play host — so a cache "hit" that
secretly still hits the wire cannot pass.
"""

import pytest

from repro.monitor.crawler import PlayStoreCrawler
from repro.net.errors import TransientNetworkError
from repro.obs import Observability
from repro.playstore.catalog import AppListing, Developer
from repro.playstore.frontend import PLAY_HOST, PlayStoreFrontend
from repro.playstore.ledger import InstallSource
from repro.playstore.store import PlayStore
from tests.conftest import make_client

HTTPS = 443


@pytest.fixture()
def rig(fabric, root_ca, rng, trust_store):
    store = PlayStore()
    developer = Developer(developer_id="dev1", name="Example", country="US")
    for package in ("com.app.alpha", "com.app.beta"):
        store.publish(AppListing(package=package, title=package,
                                 genre="Tools", developer=developer,
                                 release_day=0))
    store.record_install_batch("com.app.alpha", 0, InstallSource.ORGANIC, 700)
    clock = {"day": 0}
    PlayStoreFrontend(fabric, store, root_ca, rng,
                      current_day=lambda: clock["day"])
    client = make_client(fabric, trust_store, rng)
    crawler = PlayStoreCrawler(client, PLAY_HOST, obs=Observability())
    return store, clock, crawler, fabric


def play_connections(fabric) -> int:
    return fabric.connections_accepted(PLAY_HOST, HTTPS)


class TestProfileCache:
    def test_repeat_same_day_hits_cache_and_skips_the_wire(self, rig):
        _, _, crawler, fabric = rig
        first = crawler.crawl_profile("com.app.alpha", day=0)
        wire_after_first = play_connections(fabric)
        second = crawler.crawl_profile("com.app.alpha", day=0)
        assert second is first
        assert play_connections(fabric) == wire_after_first
        assert crawler.cache_hits == 1
        assert crawler.cache_misses == 1
        assert crawler.requests_made == 1

    def test_new_day_invalidates(self, rig):
        _, clock, crawler, fabric = rig
        crawler.crawl_profile("com.app.alpha", day=0)
        clock["day"] = 2
        snapshot = crawler.crawl_profile("com.app.alpha", day=2)
        assert snapshot.day == 2
        assert crawler.cache_hits == 0
        assert crawler.cache_misses == 2
        assert crawler.requests_made == 2

    def test_legacy_calls_without_day_never_touch_the_cache(self, rig):
        _, _, crawler, fabric = rig
        crawler.crawl_profile("com.app.alpha")
        crawler.crawl_profile("com.app.alpha")
        assert crawler.requests_made == 2
        assert crawler.cache_hits == 0
        assert crawler.cache_misses == 0

    def test_failed_fetch_is_not_cached(self, rig):
        _, _, crawler, fabric = rig
        fabric.inject_fault(PLAY_HOST, HTTPS, TransientNetworkError("reset"))
        assert crawler.crawl_profile("com.app.alpha", day=0) is None
        assert crawler.failures == 1
        assert "com.app.alpha" in crawler.retry_queue
        # The failure must not poison the cache: the next attempt goes
        # back to the wire and gets the real profile.
        fabric.clear_fault(PLAY_HOST, HTTPS)
        wire_before = play_connections(fabric)
        snapshot = crawler.crawl_profile("com.app.alpha", day=0)
        assert snapshot is not None and snapshot.installs_floor == 500
        assert play_connections(fabric) > wire_before
        assert crawler.cache_hits == 0
        assert crawler.cache_misses == 2

    def test_cache_disabled_always_fetches(self, fabric, root_ca, rng,
                                           trust_store):
        store = PlayStore()
        developer = Developer(developer_id="d", name="D", country="US")
        store.publish(AppListing(package="com.x", title="x", genre="Tools",
                                 developer=developer, release_day=0))
        PlayStoreFrontend(fabric, store, root_ca, rng, current_day=lambda: 0)
        crawler = PlayStoreCrawler(make_client(fabric, trust_store, rng),
                                   PLAY_HOST, obs=Observability(),
                                   cache_enabled=False)
        crawler.crawl_profile("com.x", day=0)
        crawler.crawl_profile("com.x", day=0)
        assert crawler.requests_made == 2
        assert crawler.cache_hits == 0


class TestChartCache:
    def test_charts_memoised_per_day(self, rig):
        store, _, crawler, fabric = rig
        crawler.crawl_charts(day=0)
        requests_after_first = crawler.requests_made
        wire_after_first = play_connections(fabric)
        crawler.crawl_charts(day=0)
        assert crawler.requests_made == requests_after_first
        assert play_connections(fabric) == wire_after_first
        assert crawler.cache_hits == requests_after_first  # one per chart

    def test_charts_refetched_on_a_new_day(self, rig):
        _, clock, crawler, _ = rig
        crawler.crawl_charts(day=0)
        requests_after_first = crawler.requests_made
        clock["day"] = 2
        crawler.crawl_charts(day=2)
        assert crawler.requests_made == 2 * requests_after_first


class TestOfferPageCapture:
    def test_duplicate_impressions_collapse_to_one_fetch(self, rig):
        _, _, crawler, fabric = rig
        impressions = ["com.app.alpha", "com.app.beta", "com.app.alpha",
                       "com.app.alpha", "com.app.beta"]
        captured = crawler.capture_offer_pages(impressions, day=0)
        assert captured == 5
        assert crawler.requests_made == 2        # one per unique package
        # One connection per unique package plus the day's resumption-
        # template priming handshake.
        assert play_connections(fabric) == 3
        assert crawler.cache_hits == 3           # the collapsed duplicates
        total = crawler.obs.metrics.counter_total
        assert total("monitor.offer_pages") == 5

    def test_uncached_capture_pays_one_fetch_per_impression(
            self, fabric, root_ca, rng, trust_store):
        store = PlayStore()
        developer = Developer(developer_id="d", name="D", country="US")
        store.publish(AppListing(package="com.x", title="x", genre="Tools",
                                 developer=developer, release_day=0))
        PlayStoreFrontend(fabric, store, root_ca, rng, current_day=lambda: 0)
        crawler = PlayStoreCrawler(make_client(fabric, trust_store, rng),
                                   PLAY_HOST, obs=Observability(),
                                   cache_enabled=False)
        crawler.capture_offer_pages(["com.x", "com.x", "com.x"], day=0)
        assert crawler.requests_made == 3
        assert crawler.cache_hits == 0

    def test_capture_seeds_the_same_day_tracked_crawl(self, rig):
        _, _, crawler, fabric = rig
        crawler.capture_offer_pages(["com.app.alpha"], day=0)
        wire_before = play_connections(fabric)
        crawler.crawl_profile("com.app.alpha", day=0)
        # The tracked crawl later that day is served from the entry the
        # impression capture populated.
        assert play_connections(fabric) == wire_before
        assert crawler.cache_hits == 1


class TestCrawlEverything:
    def test_duplicate_tracked_packages_cost_one_fetch(self, rig):
        _, _, crawler, fabric = rig
        crawler.crawl_everything(
            ["com.app.alpha", "com.app.beta", "com.app.alpha"], day=0)
        # 3 charts + 2 unique profiles = 5 wire requests, not 6 (plus
        # one non-request connection for the template priming handshake).
        assert crawler.requests_made == 5
        assert play_connections(fabric) == 6
        total = crawler.obs.metrics.counter_total
        assert total("monitor.crawl_deduped") == 1

    def test_retry_queue_drains_via_cache_aware_path(self, rig):
        _, clock, crawler, fabric = rig
        fabric.inject_fault(PLAY_HOST, HTTPS, TransientNetworkError("reset"))
        crawler.crawl_everything(["com.app.alpha"], day=0)
        assert crawler.retry_queue == ["com.app.alpha"]
        fabric.clear_fault(PLAY_HOST, HTTPS)
        clock["day"] = 2
        crawler.crawl_everything(["com.app.alpha"], day=2)
        assert crawler.retry_queue == []
        total = crawler.obs.metrics.counter_total
        assert total("monitor.crawl_retry_drained") == 1
        assert total("monitor.crawl_retry_recovered") == 1
        assert crawler.archive.profile("com.app.alpha", 2) is not None

    def test_sharded_visit_matches_serial_counters(self, fabric, root_ca,
                                                   rng, trust_store):
        from repro.parallel import ShardScheduler

        def build(shards):
            import random as _random
            from repro.net.fabric import NetworkFabric
            from repro.net.tls import CertificateAuthority, TrustStore
            local_rng = _random.Random(1234)
            local_fabric = NetworkFabric()
            ca = CertificateAuthority("Example Root CA", local_rng)
            trust = TrustStore()
            trust.add_root(ca.self_certificate())
            store = PlayStore()
            developer = Developer(developer_id="d", name="D", country="US")
            for i in range(6):
                store.publish(AppListing(
                    package=f"com.app.{i}", title=f"app{i}", genre="Tools",
                    developer=developer, release_day=0))
            PlayStoreFrontend(local_fabric, store, ca, local_rng,
                              current_day=lambda: 0)
            crawler = PlayStoreCrawler(
                make_client(local_fabric, trust, local_rng), PLAY_HOST,
                obs=Observability(), task_seed=99)
            crawler.crawl_everything([f"com.app.{i}" for i in range(6)],
                                     day=0, scheduler=ShardScheduler(shards))
            return crawler

        serial, sharded = build(1), build(4)
        assert serial.requests_made == sharded.requests_made
        assert serial.failures == sharded.failures
        assert (serial.obs.metrics.counters()
                == sharded.obs.metrics.counters())
