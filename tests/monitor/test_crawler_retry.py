"""Crawler retry-queue carry-over under repeated faults.

The paper's crawler re-tried coverage gaps on later visit days.  These
tests pin the queue's lifecycle across *repeated* failures: a package
that fails again on its retry visit goes back in the queue, a queued
package dropped from the tracked set is still retried (longitudinal
series), and a checkpointed queue survives a restart mid-gap.
"""

import pytest

from repro.monitor.crawler import PlayStoreCrawler
from repro.net.errors import TransientNetworkError
from repro.obs import Observability
from repro.playstore.catalog import AppListing, Developer
from repro.playstore.frontend import PLAY_HOST, PlayStoreFrontend
from repro.playstore.ledger import InstallSource
from repro.playstore.store import PlayStore
from tests.conftest import make_client

pytestmark = pytest.mark.chaos

HTTPS = 443
ALPHA, BETA = "com.app.alpha", "com.app.beta"


@pytest.fixture()
def rig(fabric, root_ca, rng, trust_store):
    store = PlayStore()
    developer = Developer(developer_id="dev1", name="Example", country="US")
    for package in (ALPHA, BETA):
        store.publish(AppListing(package=package, title=package,
                                 genre="Tools", developer=developer,
                                 release_day=0))
    store.record_install_batch(ALPHA, 0, InstallSource.ORGANIC, 700)
    clock = {"day": 0}
    PlayStoreFrontend(fabric, store, root_ca, rng,
                      current_day=lambda: clock["day"])
    client = make_client(fabric, trust_store, rng)
    crawler = PlayStoreCrawler(client, PLAY_HOST, obs=Observability())
    return clock, crawler, fabric


def retry_totals(crawler):
    total = crawler.obs.metrics.counter_total
    return {
        "queued": total("monitor.crawl_retry_queued"),
        "drained": total("monitor.crawl_retry_drained"),
        "recovered": total("monitor.crawl_retry_recovered"),
    }


class TestRepeatedFaults:
    def test_failed_retry_goes_back_in_the_queue(self, rig):
        clock, crawler, fabric = rig
        fabric.inject_fault(PLAY_HOST, HTTPS, TransientNetworkError("reset"))
        crawler.crawl_everything([ALPHA], day=0)
        assert crawler.retry_queue == [ALPHA]

        # Visit 2, still down: the queued retry is drained, fails
        # again, and is re-queued — the gap carries over, it is never
        # silently dropped.
        clock["day"] = 1
        crawler.crawl_everything([ALPHA], day=1)
        assert crawler.retry_queue == [ALPHA]
        assert retry_totals(crawler) == {
            "queued": 2, "drained": 1, "recovered": 0}

        # Visit 3, healed: the second retry drains and recovers.
        fabric.clear_fault(PLAY_HOST, HTTPS)
        clock["day"] = 2
        crawler.crawl_everything([ALPHA], day=2)
        assert crawler.retry_queue == []
        assert retry_totals(crawler) == {
            "queued": 2, "drained": 2, "recovered": 1}
        assert crawler.archive.profile(ALPHA, 2) is not None

    def test_tracked_and_queued_package_costs_one_retry_fetch(self, rig):
        clock, crawler, fabric = rig
        fabric.inject_fault(PLAY_HOST, HTTPS, TransientNetworkError("reset"))
        crawler.crawl_everything([ALPHA], day=0)
        fabric.clear_fault(PLAY_HOST, HTTPS)

        # ALPHA is both in the retry queue and still tracked: the visit
        # drains it once and pays one profile fetch, not two.
        clock["day"] = 1
        requests_before = crawler.requests_made
        crawler.crawl_everything([ALPHA], day=1)
        profile_fetches = crawler.requests_made - requests_before - 3  # charts
        assert profile_fetches == 1
        assert retry_totals(crawler)["drained"] == 1
        assert retry_totals(crawler)["recovered"] == 1

    def test_orphaned_package_is_still_retried(self, rig):
        clock, crawler, fabric = rig
        fabric.inject_fault(PLAY_HOST, HTTPS, TransientNetworkError("reset"))
        crawler.crawl_everything([ALPHA], day=0)
        assert crawler.retry_queue == [ALPHA]
        fabric.clear_fault(PLAY_HOST, HTTPS)

        # ALPHA is no longer tracked on the next visit, but the queued
        # gap is retried anyway so the archive keeps its series.
        clock["day"] = 1
        crawler.crawl_everything([BETA], day=1)
        assert crawler.retry_queue == []
        assert retry_totals(crawler)["recovered"] == 1
        assert crawler.archive.profile(ALPHA, 1) is not None
        assert crawler.archive.profile(BETA, 1) is not None


class TestQueueAcrossRestart:
    def test_checkpointed_queue_drains_after_a_restart(
            self, rig, fabric, root_ca, rng, trust_store):
        clock, crawler, _ = rig
        fabric.inject_fault(PLAY_HOST, HTTPS, TransientNetworkError("reset"))
        crawler.crawl_everything([ALPHA], day=0)
        state = crawler.state_dict()
        assert state["retry_queue"] == [ALPHA]
        fabric.clear_fault(PLAY_HOST, HTTPS)

        # A fresh crawler restored from the checkpoint still owes the
        # retry and recovers it on its first visit.
        restored = PlayStoreCrawler(make_client(fabric, trust_store, rng),
                                    PLAY_HOST, obs=Observability())
        restored.load_state(state)
        assert restored.retry_queue == [ALPHA]
        clock["day"] = 1
        restored.crawl_everything([ALPHA], day=1)
        assert restored.retry_queue == []
        assert retry_totals(restored) == {
            "queued": 0, "drained": 1, "recovered": 1}
        assert restored.archive.profile(ALPHA, 1) is not None
