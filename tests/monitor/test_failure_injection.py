"""Failure injection across the measurement pipeline.

Real measurement infrastructure survives partial outages: a dead offer
wall must not abort a milk run for the other walls, and a flaky Play
front end must not corrupt the crawl archive.
"""

import pytest

from repro.net.errors import ConnectionRefusedFabricError
from tests.monitor.test_fuzzer_milker import rig  # fixture reuse


class TestWallOutage:
    def test_dead_wall_recorded_as_error_not_crash(self, rig, fabric):
        milker, spec, walls = rig
        fabric.inject_fault(walls["Fyber"].hostname, 443,
                            ConnectionRefusedFabricError("wall down"))
        run = milker.milk(spec, day=3, country="US")
        assert run.errors  # the outage is reported...
        # ...and the other wall was still milked.
        assert any(o.iip_name == "ayeT-Studios" for o in run.offers)
        assert not any(o.iip_name == "Fyber" for o in run.offers)

    def test_wall_recovers_next_run(self, rig, fabric):
        milker, spec, walls = rig
        fabric.inject_fault(walls["Fyber"].hostname, 443,
                            ConnectionRefusedFabricError("wall down"))
        milker.milk(spec, day=3, country="US")
        fabric.clear_fault(walls["Fyber"].hostname, 443)
        run = milker.milk(spec, day=5, country="US")
        assert run.errors == []
        assert any(o.iip_name == "Fyber" for o in run.offers)


class TestCrawlerOutage:
    def test_profile_failures_counted_and_archive_clean(self, fabric, root_ca,
                                                        trust_store, rng):
        import random
        from repro.monitor.crawler import PlayStoreCrawler
        from repro.playstore.catalog import AppListing, Developer
        from repro.playstore.frontend import PLAY_HOST, PlayStoreFrontend
        from repro.playstore.store import PlayStore
        from tests.conftest import make_client

        store = PlayStore()
        store.publish(AppListing(
            package="com.app.alpha", title="A", genre="Tools",
            developer=Developer(developer_id="d", name="D", country="US"),
            release_day=0))
        PlayStoreFrontend(fabric, store, root_ca, rng, current_day=lambda: 0)
        crawler = PlayStoreCrawler(make_client(fabric, trust_store, rng),
                                   PLAY_HOST)
        crawler.crawl_everything(["com.app.alpha", "com.unlisted.app"])
        assert crawler.failures == 1
        assert crawler.archive.first_profile("com.unlisted.app") is None
        assert crawler.archive.first_profile("com.app.alpha") is not None
