"""Milker degradation under injected faults, asserted via obs counters.

These tests close the ROADMAP item about wiring fault-injection tests to
the observability layer: the assertions read ``net.fabric.faults_raised``,
``net.client.proxy_refusals`` and the monitor's corruption counters
instead of hand-rolled bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.affiliates.app import AffiliateAppRuntime
from repro.monitor.milker import MilkRun
from repro.net.chaos import ChaosScenario, FaultPlan
from repro.net.client import HttpClient
from repro.net.errors import (
    CertificatePinningError,
    ConnectionRefusedFabricError,
)
from repro.net.fabric import NetworkFabric
from repro.obs import Observability

from tests.monitor.test_fuzzer_milker import rig  # fixture reuse

pytestmark = pytest.mark.chaos


@pytest.fixture()
def fabric():
    """Overrides the conftest fabric: this module asserts real counters."""
    return NetworkFabric(obs=Observability())


class TestWallOutageCounters:
    def test_dead_wall_counted_in_fabric_and_proxy_metrics(self, rig, fabric):
        milker, spec, walls = rig
        host = walls["Fyber"].hostname
        fabric.inject_fault(host, 443,
                            ConnectionRefusedFabricError("wall down"))
        run = milker.milk(spec, day=3, country=None)
        metrics = fabric.obs.metrics
        # The fabric raised the injected fault...
        assert metrics.counter_value(
            "net.fabric.faults_raised", host=host,
            error="ConnectionRefusedFabricError") >= 1
        # ...the mitm proxy answered the CONNECT with an error...
        assert metrics.counter_value(
            "net.client.proxy_refusals", host=host) >= 1
        # ...and the run degraded instead of dying.
        assert run.degraded
        assert run.walls_lost == ["Fyber"]
        assert metrics.counter_value("monitor.milk_partial",
                                     app=spec.package) == 1
        assert metrics.counter_value("monitor.walls_lost", iip="Fyber",
                                     app=spec.package) == 1
        assert any(o.iip_name == "ayeT-Studios" for o in run.offers)

    def test_lost_wall_recovers_and_metrics_stop_growing(self, rig, fabric):
        milker, spec, walls = rig
        host = walls["Fyber"].hostname
        fabric.inject_fault(host, 443,
                            ConnectionRefusedFabricError("wall down"))
        milker.milk(spec, day=3, country=None)
        fabric.clear_fault(host, 443)
        run = milker.milk(spec, day=5, country=None)
        assert not run.degraded
        metrics = fabric.obs.metrics
        assert metrics.counter_total("monitor.milk_partial") == 1


class TestPinningFailureCounters:
    def test_pinned_wall_counts_pinning_and_request_failures(self, rig, fabric):
        milker, spec, walls = rig
        host = walls["Fyber"].hostname
        pins = {host: walls["Fyber"]._server.identity.leaf.fingerprint()}
        client = HttpClient(fabric, milker.phone.endpoint,
                            milker.phone.trust_store, milker._rng,
                            proxy=(milker.mitm.hostname, milker.mitm.port),
                            pinned_fingerprints=pins)
        milker.mitm.upstream_proxy = None
        runtime = AffiliateAppRuntime(spec, client, walls)
        runtime.open()
        with pytest.raises(CertificatePinningError):
            runtime.select_tab("Fyber")
        metrics = fabric.obs.metrics
        assert metrics.counter_value("net.client.pinning_failures",
                                     host=host) == 1
        assert metrics.counter_value(
            "net.client.request_failures", host=host,
            error="CertificatePinningError") == 1


class TestCorruptOfferJson:
    def test_malformed_wall_json_counted_not_fatal(self, rig, fabric):
        milker, spec, _ = rig
        plan = FaultPlan(
            ChaosScenario(name="t", seed=1, corrupt_json_rate=1.0),
            clock=lambda: 3)
        fabric.set_chaos(plan)
        run = milker.milk(spec, day=3, country=None)
        assert isinstance(run, MilkRun)  # the pipeline survived
        assert run.offers == []
        metrics = fabric.obs.metrics
        corrupted = (metrics.counter_total("monitor.corrupt_wall_responses")
                     + metrics.counter_total("monitor.corrupt_offer_entries"))
        assert corrupted >= 1
        assert metrics.counter_total("net.server.chaos_corrupted") >= 1

    def test_clean_run_after_chaos_cleared(self, rig, fabric):
        milker, spec, _ = rig
        fabric.set_chaos(FaultPlan(
            ChaosScenario(name="t", seed=1, corrupt_json_rate=1.0),
            clock=lambda: 3))
        milker.milk(spec, day=3, country=None)
        fabric.set_chaos(FaultPlan(ChaosScenario.off()))
        run = milker.milk(spec, day=5, country=None)
        assert len(run.offers) == 30
        assert run.errors == []
