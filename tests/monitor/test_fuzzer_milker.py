"""Fuzzer + milker tests: the full interception pipeline."""

import random

import pytest

from repro.affiliates.app import AffiliateAppSpec
from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.offerwall import OfferWallServer
from repro.iip.registry import build_platforms
from repro.monitor.dataset import OfferDataset
from repro.monitor.fuzzer import UiFuzzer
from repro.monitor.milker import Milker
from repro.net.ip import AsnDatabase
from repro.net.proxy import MitmProxy
from repro.net.tls import TrustStore
from repro.net.vpn import VpnExitPool
from repro.users.devices import DeviceFactory
from tests.iip.test_platform import make_campaign, register_and_fund


@pytest.fixture()
def rig(fabric, root_ca, trust_store, rng):
    """Two walls, one affiliate spec, a mitm proxy, a measurement phone."""
    ledger = MoneyLedger()
    platforms = build_platforms(ledger, AttributionMediator())
    walls = {}
    for name, payout, count in (("Fyber", 0.19, 25), ("ayeT-Studios", 0.05, 5)):
        platform = platforms[name]
        register_and_fund(ledger, platform, developer_id=f"dev-{name}",
                          funds=20000.0)
        for index in range(count):
            target = ("US", "GB") if name == "Fyber" and index == 0 else None
            campaign = make_campaign(platform, developer_id=f"dev-{name}",
                                     installs=50, payout=payout,
                                     target_countries=target)
            platform.launch(campaign.campaign_id, day=0)
        walls[name] = OfferWallServer(fabric, platform, root_ca, rng,
                                      current_day=lambda: 3)
    spec = AffiliateAppSpec(
        package="com.ayet.cashpirate", title="CashPirate",
        installs_display="1M+", integrated_iips=("Fyber", "ayeT-Studios"),
        currency_name="pirate coins", points_per_usd=2500.0)
    for wall in walls.values():
        wall.register_affiliate(spec.wall_config())
    mitm_address = fabric.asn_db.allocate(14061, rng)
    mitm = MitmProxy(fabric, "mitm.lab.example", mitm_address, rng,
                     upstream_trust=trust_store)
    phone_store = TrustStore()
    phone_store.add_root(root_ca.self_certificate())
    phone_store.add_root(mitm.ca_certificate())
    phone = DeviceFactory(fabric.asn_db, rng).real_phone(
        "US", trust_store=phone_store)
    vpn = VpnExitPool(fabric, rng, countries=("US", "DE", "GB"))
    milker = Milker(fabric, phone, mitm, walls, rng, vpn=vpn)
    return milker, spec, walls


class TestMilker:
    def test_milk_collects_all_offers(self, rig):
        milker, spec, _ = rig
        run = milker.milk(spec, day=3, country="US")
        assert run.walls_seen == ["Fyber", "ayeT-Studios"]
        assert len(run.offers) == 30
        assert run.errors == []
        assert run.fuzz_report is not None
        # 25 Fyber offers need one extra page beyond the first.
        assert run.fuzz_report.scrolls >= 1
        assert set(run.fuzz_report.tabs_opened) == {"Fyber", "ayeT-Studios"}

    def test_geo_targeted_offer_only_visible_from_target(self, rig):
        milker, spec, _ = rig
        us_run = milker.milk(spec, day=3, country="US")
        de_run = milker.milk(spec, day=3, country="DE")
        assert len(us_run.offers) == 30
        assert len(de_run.offers) == 29  # the US/GB-targeted offer is hidden

    def test_observed_offers_carry_points_and_description(self, rig):
        milker, spec, _ = rig
        run = milker.milk(spec, day=3, country="US")
        fyber_offers = [o for o in run.offers if o.iip_name == "Fyber"]
        assert fyber_offers[0].payout_points == 475  # $0.19 * 2500
        assert "Install" in fyber_offers[0].description
        assert fyber_offers[0].affiliate_package == spec.package

    def test_milk_without_vpn_uses_direct_route(self, rig):
        milker, spec, _ = rig
        run = milker.milk(spec, day=3, country=None)
        assert len(run.offers) == 30
        assert run.country is None

    def test_pinned_wall_defeats_milking(self, rig, fabric):
        milker, spec, walls = rig
        # Simulate the affiliate SDK pinning the Fyber wall's real key.
        milker.phone.trust_store  # phone trusts mitm CA, but pin wins
        pins = {walls["Fyber"].hostname: walls["Fyber"]._server.identity.leaf.fingerprint()}
        from repro.net.client import HttpClient
        client = HttpClient(fabric, milker.phone.endpoint,
                            milker.phone.trust_store, milker._rng,
                            proxy=(milker.mitm.hostname, milker.mitm.port),
                            pinned_fingerprints=pins)
        from repro.affiliates.app import AffiliateAppRuntime
        milker.mitm.upstream_proxy = None
        runtime = AffiliateAppRuntime(spec, client, walls)
        runtime.open()
        from repro.net.errors import CertificatePinningError
        with pytest.raises(CertificatePinningError):
            runtime.select_tab("Fyber")

    def test_dataset_ingestion_normalizes_points(self, rig):
        milker, spec, _ = rig
        run = milker.milk(spec, day=3, country="US")
        dataset = OfferDataset({spec.package: spec})
        dataset.ingest_all(run.offers)
        assert dataset.offer_count() == 30
        fyber = dataset.offers_for_iip("Fyber")
        assert all(abs(record.payout_usd - 0.19) < 0.001 for record in fyber)

    def test_dataset_dedups_across_days_and_tracks_window(self, rig):
        milker, spec, _ = rig
        dataset = OfferDataset({spec.package: spec})
        dataset.ingest_all(milker.milk(spec, day=3, country="US").offers)
        dataset.ingest_all(milker.milk(spec, day=5, country="GB").offers)
        assert dataset.offer_count() == 30
        record = dataset.offers_for_iip("Fyber")[0]
        assert record.first_seen_day == 3
        assert record.last_seen_day == 5
        assert record.countries == {"US", "GB"}

    def test_unknown_exchange_rate_rejected(self, rig):
        milker, spec, _ = rig
        run = milker.milk(spec, day=3, country="US")
        dataset = OfferDataset({})
        with pytest.raises(KeyError):
            dataset.ingest(run.offers[0])


class TestFuzzerUnit:
    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            UiFuzzer(max_scrolls_per_tab=0)
