"""CLI tests: every subcommand, argument handling, export/report flow."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_wild_arguments(self):
        args = build_parser().parse_args(
            ["wild", "--scale", "0.1", "--days", "30",
             "--export-offers", "x.json"])
        assert args.scale == 0.1
        assert args.days == 30
        assert args.export_offers == "x.json"

    def test_report_requires_offers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_wild_chaos_arguments(self):
        args = build_parser().parse_args(
            ["wild", "--chaos-profile", "paper", "--chaos-seed", "7"])
        assert args.chaos_profile == "paper"
        assert args.chaos_seed == 7

    def test_wild_chaos_defaults_off(self):
        args = build_parser().parse_args(["wild"])
        assert args.chaos_profile == "off"
        assert args.chaos_seed is None

    def test_unknown_chaos_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["wild", "--chaos-profile", "catastrophic"])

    @pytest.mark.parametrize("flag,value", [
        ("--scale", "0"), ("--scale", "-0.5"), ("--scale", "banana"),
        ("--days", "0"), ("--days", "-3"), ("--days", "2.5"),
    ])
    def test_wild_rejects_non_positive_scale_and_days(self, capsys,
                                                      flag, value):
        """A clear usage error (exit 2), not a deep traceback from
        inside the scenario builder."""
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["wild", flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "positive" in err or "is not" in err

    def test_wild_streaming_arguments(self):
        args = build_parser().parse_args(
            ["wild", "--batch-devices", "256", "--spill-dir", "/tmp/s"])
        assert args.batch_devices == 256
        assert args.spill_dir == "/tmp/s"

    def test_wild_streaming_defaults_materialised(self):
        args = build_parser().parse_args(["wild"])
        assert args.batch_devices == 0
        assert args.spill_dir is None


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "RankApp" in out

    def test_detect(self, capsys):
        assert main(["detect", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "policy candidate: com.advertised." in out

    def test_honey(self, capsys):
        assert main(["honey", "--seed", "2019"]) == 0
        out = capsys.readouterr().out
        assert "total installs: 1679" in out
        assert "1000+" in out

    def test_wild_with_export_and_report_round_trip(self, capsys, tmp_path):
        offers = tmp_path / "offers.json"
        archive = tmp_path / "archive.json"
        assert main(["wild", "--scale", "0.05", "--days", "14",
                     "--export-offers", str(offers),
                     "--export-archive", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Table 5" in out
        assert "exported" in out
        assert offers.exists()
        assert archive.exists()

        assert main(["report", "--offers", str(offers),
                     "--archive", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out
        assert "Table 3" in out
        assert "Table 4" in out

    @pytest.mark.chaos
    def test_wild_chaos_run_prints_coverage_loss(self, capsys):
        assert main(["wild", "--scale", "0.05", "--days", "10",
                     "--chaos-profile", "paper", "--chaos-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "chaos profile: paper (seed 7)" in out
        assert "faults injected" in out
        assert "survived" in out

    def test_wild_without_chaos_omits_coverage_loss(self, capsys):
        assert main(["wild", "--scale", "0.05", "--days", "10"]) == 0
        out = capsys.readouterr().out
        assert "chaos profile" not in out

    def test_report_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["report", "--offers", str(tmp_path / "nope.json")]) == 2
        assert "cannot load offers" in capsys.readouterr().err

    def test_report_bad_file_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["report", "--offers", str(bad)]) == 2
        assert "cannot load offers" in capsys.readouterr().err


class TestPaperCommand:
    def test_paper_small_scale(self, capsys):
        assert main(["paper", "--scale", "0.05", "--days", "14",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 3", "Table 5", "Table 7",
                       "Figure 4", "Figure 6", "Arbitrage", "Enforcement",
                       "Cost recovery"):
            assert marker in out
