"""PaperReport API tests."""

import pytest

from repro.core.paper_report import PaperReport, run_full_reproduction


@pytest.fixture(scope="module")
def report():
    return run_full_reproduction(seed=5, scale=0.06, days=16)


class TestPaperReport:
    def test_all_sections_present(self, report):
        assert report.section_names() == [
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "fig4", "fig6", "arbitrage", "enforcement",
            "cost_recovery"]

    def test_section_lookup(self, report):
        assert "Table 5" in report.section("table5")
        with pytest.raises(KeyError):
            report.section("table99")

    def test_render_concatenates_everything(self, report):
        text = report.render()
        for _, section_text in report.sections:
            assert section_text in text

    def test_results_attached(self, report):
        assert report.results.dataset.offer_count() > 0
        assert report.results.baseline_packages
