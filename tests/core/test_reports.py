"""Report-renderer tests: every table prints its load-bearing cells."""

import pytest

from repro.analysis.appstore_impact import (
    CaseStudyTimeline,
    EnforcementObservation,
    GroupCount,
    ImpactComparison,
    RankTimelinePoint,
)
from repro.analysis.characterize import IipSummaryRow, OfferTypeRow
from repro.analysis.funding import (
    FundedOfferBreakdown,
    FundingComparison,
    FundingGroup,
)
from repro.analysis.monetization import AdLibraryCdf, ArbitrageStats
from repro.analysis.stats import ChiSquaredResult
from repro.core import reports


def make_comparison():
    return ImpactComparison(
        baseline=GroupCount("Baseline", 300, 6),
        vetted=GroupCount("Vetted", 492, 61),
        unvetted=GroupCount("Unvetted", 538, 88),
        vetted_vs_baseline=ChiSquaredResult(26.0, 3.4e-7, 1),
        unvetted_vs_baseline=ChiSquaredResult(39.9, 2.7e-10, 1),
    )


class TestStaticTables:
    def test_table1_lists_all_seven(self):
        text = reports.render_table1()
        for name in ("Fyber", "OfferToro", "AdscendMedia", "HangMyAds",
                     "AdGem", "ayeT-Studios", "RankApp"):
            assert name in text
        assert text.count("Vetted") >= 5
        assert text.count("Unvetted") == 2

    def test_table2_static_and_observed(self):
        static = reports.render_table2()
        assert "com.mobvantage.CashForApps" in static
        assert "10M+" in static
        observed = reports.render_table2(
            {"com.bigcash.app": ["OfferToro"]})
        assert "OfferToro" in observed


class TestMeasuredTables:
    def test_table3(self):
        rows = [
            OfferTypeRow("No activity", 1000, 0.47, 0.06),
            OfferTypeRow("Activity", 1126, 0.53, 0.52),
            OfferTypeRow("Activity (Usage)", 787, 0.37, 0.50),
        ]
        text = reports.render_table3(rows)
        assert "47%" in text
        assert "$0.06" in text
        assert "N = 2126" in text

    def test_table4(self):
        row = IipSummaryRow(
            iip_name="Fyber", iip_type="Vetted",
            median_offer_payout_usd=0.19, no_activity_fraction=0.24,
            activity_fraction=0.76, app_count=378, developer_count=319,
            country_count=40, genre_count=36,
            median_install_count=1_000_000, median_app_age_days=777)
        text = reports.render_table4([row])
        assert "1,000,000" in text
        assert "777" in text
        assert "$0.19" in text

    def test_table5_and_6(self):
        comparison = make_comparison()
        table5 = reports.render_table5(comparison)
        assert "chi2=26.00" in table5
        assert "61 (12.4%)" in table5
        table6 = reports.render_table6(comparison)
        assert "Table 6" in table6

    def test_likelihood_ratio_helper(self):
        comparison = make_comparison()
        assert comparison.likelihood_ratio(comparison.unvetted) == pytest.approx(
            (88 / 538) / (6 / 300), rel=1e-6)

    def test_table7(self):
        comparison = FundingComparison(
            baseline=FundingGroup("Baseline", 300, 82, 5),
            vetted=FundingGroup("Vetted", 492, 192, 30),
            unvetted=FundingGroup("Unvetted", 538, 79, 11),
            vetted_vs_baseline=ChiSquaredResult(4.7, 0.03, 1),
            unvetted_vs_baseline=ChiSquaredResult(2.8, 0.10, 1),
            public_company_apps=28)
        text = reports.render_table7(comparison)
        assert "30 (15.6%)" in text
        assert "publicly traded" in text
        assert "28" in text

    def test_table8(self):
        breakdown = FundedOfferBreakdown(
            funded_app_count=30, no_activity_app_fraction=0.67,
            activity_app_fraction=0.63, no_activity_average_payout=0.12,
            activity_average_payout=0.92)
        text = reports.render_table8(breakdown)
        assert "67%" in text
        assert "$0.92" in text
        assert "N = 30" in text


class TestFigures:
    def test_fig4_bars_scale(self):
        text = reports.render_fig4([("0-1k", 10), ("1k-10k", 30)])
        lines = text.splitlines()
        assert "#" * 30 in lines[2]
        assert "#" * 10 in lines[1]

    def test_fig5_markers(self):
        timeline = CaseStudyTimeline(
            package="com.mmm.trebelmusic", chart="top_games",
            campaign_start=10, campaign_end=30,
            points=[RankTimelinePoint(8, None),
                    RankTimelinePoint(12, 0.95)])
        text = reports.render_fig5(timeline)
        assert "not in chart" in text
        assert "percentile 0.95" in text
        assert "<- campaign" in text

    def test_fig6(self):
        distributions = [AdLibraryCdf("Activity offers", 4, (2, 5, 7, 9))]
        text = reports.render_fig6(distributions)
        assert "P(>= 5 ad libs) = 75%" in text

    def test_arbitrage_and_enforcement(self):
        arbitrage = reports.render_arbitrage(ArbitrageStats(
            total_apps=922, arbitrage_apps=36, vetted_apps=492,
            vetted_arbitrage=35, unvetted_apps=538, unvetted_arbitrage=10))
        assert "36/922 (3.9%)" in arbitrage
        enforcement = reports.render_enforcement([
            EnforcementObservation("Unvetted", 538, 11)])
        assert "2.0%" in enforcement
