"""End-to-end tests of the Section-3 honey-app experiment."""

import pytest

from repro.core.honey_experiment import HoneyAppExperiment
from repro.core.reports import render_honey_report
from repro.honeyapp.app import HONEY_PACKAGE
from repro.simulation.world import World


@pytest.fixture(scope="module")
def results():
    world = World(seed=2019)
    experiment = HoneyAppExperiment(world)
    return experiment.run(), world


class TestAcquisition:
    def test_total_installs_match_paper(self, results):
        experiment_results, _ = results
        assert experiment_results.total_installs() == 1679

    def test_per_iip_delivery(self, results):
        experiment_results, _ = results
        by_iip = {s.iip_name: s
                  for s in experiment_results.analysis.acquisition()}
        assert by_iip["Fyber"].installs == 626
        assert by_iip["ayeT-Studios"].installs == 550
        assert by_iip["RankApp"].installs == 503

    def test_rankapp_missing_telemetry(self, results):
        experiment_results, _ = results
        by_iip = {s.iip_name: s
                  for s in experiment_results.analysis.acquisition()}
        assert 0.35 < by_iip["RankApp"].missing_fraction < 0.55
        assert by_iip["Fyber"].missing_fraction < 0.05

    def test_delivery_speed_ordering(self, results):
        experiment_results, _ = results
        by_iip = {s.iip_name: s
                  for s in experiment_results.analysis.acquisition()}
        assert by_iip["Fyber"].delivery_hours < 3
        assert by_iip["ayeT-Studios"].delivery_hours < 3
        assert by_iip["RankApp"].delivery_hours > 24

    def test_install_count_manipulated_zero_to_thousand(self, results):
        experiment_results, _ = results
        assert experiment_results.displayed_installs_before == 0
        assert experiment_results.displayed_installs_after >= 1000

    def test_mean_cost_is_cents_not_dollars(self, results):
        # The paper: ~$0.06 incentivized vs $1.22 non-incentivized.
        experiment_results, _ = results
        assert 0.01 < experiment_results.mean_cost_per_install < 0.30


class TestEngagement:
    def test_click_rates_match_paper_bands(self, results):
        experiment_results, _ = results
        by_iip = {s.iip_name: s
                  for s in experiment_results.analysis.engagement()}
        assert 0.35 < by_iip["Fyber"].click_rate < 0.53
        assert 0.35 < by_iip["ayeT-Studios"].click_rate < 0.53
        assert by_iip["RankApp"].click_rate < 0.12

    def test_engagement_fades_after_day_one(self, results):
        experiment_results, _ = results
        for summary in experiment_results.analysis.engagement():
            assert summary.clicked_day_after <= 12
            assert summary.clicked_day_after < summary.clicked_record


class TestAutomationSignals:
    def test_some_emulators_and_cloud_devices(self, results):
        experiment_results, _ = results
        automation = experiment_results.analysis.automation()
        assert 1 <= automation.emulator_installs <= 12
        assert 2 <= automation.cloud_asn_devices <= 20

    def test_device_farm_detected(self, results):
        experiment_results, _ = results
        automation = experiment_results.analysis.automation()
        assert len(automation.farms) == 1
        farm = automation.farms[0]
        assert farm.installs == 20
        assert farm.rooted >= 14
        assert farm.rooted_sharing_ssid == farm.rooted


class TestCoInstalls:
    def test_affiliate_keyword_prevalence_ordering(self, results):
        experiment_results, _ = results
        co = experiment_results.analysis.co_installs()
        rates = co.money_keyword_fraction_by_iip
        assert rates["RankApp"] > rates["ayeT-Studios"] > rates["Fyber"]
        assert rates["RankApp"] > 0.9

    def test_flagship_affiliates(self, results):
        experiment_results, _ = results
        co = experiment_results.analysis.co_installs()
        assert co.top_affiliate_by_iip["RankApp"][0] == "eu.gcashapp"
        assert co.top_affiliate_by_iip["ayeT-Studios"][0] == "com.ayet.cashpirate"

    def test_co_install_corpus_scale(self, results):
        experiment_results, _ = results
        co = experiment_results.analysis.co_installs()
        assert co.total_unique_packages > 5000


class TestSideEffects:
    def test_workers_got_paid(self, results):
        _, world = results
        worker_wallets = [
            entry for entry in world.money.entries
            if entry.destination.startswith("worker-")]
        assert len(worker_wallets) > 1000

    def test_mediator_tracked_conversions(self, results):
        _, world = results
        assert world.mediator.total_conversions > 1000

    def test_telemetry_arrived_over_https_only(self, results):
        _, world = results
        assert world.telemetry.events
        # Every stored payload carries only sanitised network data.
        for stored in world.telemetry.events[:200]:
            assert stored.payload.ip_slash24.endswith("/24")
            assert len(stored.payload.ssid_hash) == 16

    def test_report_renders(self, results):
        experiment_results, _ = results
        text = render_honey_report(experiment_results)
        assert "1679" in text
        assert "device farm" in text
        assert "eu.gcashapp" in text


class TestZeroDeliveredCampaigns:
    """Regression: a purchase small enough to round to zero delivered
    installs must not divide by zero in the mix or the signal rates."""

    def test_mix_rejects_zero_delivered(self):
        from repro.core.honey_experiment import _mix_for
        with pytest.raises(ValueError):
            _mix_for("Fyber", 0)

    def test_zero_installs_run_completes(self):
        world = World(seed=2019)
        experiment = HoneyAppExperiment(world, installs_per_iip=0)
        experiment_results = experiment.run()
        assert experiment_results.total_installs() == 0
        for record in experiment_results.campaigns:
            assert record.delivered == 0
            assert record.completions_paid == 0
            assert record.total_cost_usd == 0.0
        # No population was built, so no telemetry and no enforcement.
        assert world.telemetry.events == []
        assert experiment_results.enforcement_actions == 0

    def test_zero_installs_run_completes_sharded(self):
        world = World(seed=2019)
        experiment = HoneyAppExperiment(world, installs_per_iip=0, shards=4)
        assert experiment.run().total_installs() == 0
