#!/usr/bin/env python3
"""Play Store enforcement audit (paper Section 5.2).

Runs many campaigns of varying quality against the store's enforcement
engine and shows what the paper observed: campaigns from vetted-style
platforms (high open rates, organic-looking pacing) are essentially
never filtered, while a small percentage of the crudest no-activity
campaigns lose their installs -- visible as an install-count bin drop,
like the "Phonebook - Contacts manager" app falling from 1,000+ to 500+.

Run:  python examples/enforcement_audit.py
"""

import random

from repro.playstore.bins import bin_label
from repro.playstore.catalog import AppListing, Developer
from repro.playstore.ledger import InstallSource
from repro.playstore.policy import CampaignSignals
from repro.playstore.store import PlayStore


def run_cohort(store, rng, label, count, open_rate_range, emulator_rate,
               delivery_hours, installs_each=600):
    detected = 0
    for index in range(count):
        package = f"com.{label.lower()}.app{index:04d}.x"
        store.publish(AppListing(
            package=package, title=f"{label} App {index}", genre="Tools",
            developer=Developer(developer_id=f"dev-{label}-{index}",
                                name=f"{label} Dev {index}", country="US"),
            release_day=0))
        store.record_install_batch(package, 0, InstallSource.ORGANIC, 450)
        campaign_id = f"{label}-c{index}"
        store.record_install_batch(package, 1, InstallSource.INCENTIVIZED,
                                   installs_each, campaign_id=campaign_id)
        signals = CampaignSignals(
            campaign_id=campaign_id, package=package,
            installs_delivered=installs_each,
            open_rate=rng.uniform(*open_rate_range),
            emulator_rate=emulator_rate,
            delivery_hours=delivery_hours, end_day=3)
        action = store.enforcement.review(signals, day=10, rng=rng)
        if action:
            detected += 1
            before = bin_label(store.ledger.total_installs(package, 9))
            after = bin_label(store.ledger.total_installs(package, 10))
            print(f"  filtered {package}: {action.installs_removed} installs "
                  f"removed, displayed count {before} -> {after}")
    return detected


def main() -> None:
    rng = random.Random(20)
    store = PlayStore()

    print("cohort A: vetted-style campaigns (98% open rate, day-long pacing)")
    vetted_hits = run_cohort(store, rng, "Vetted", 300,
                             open_rate_range=(0.95, 1.0),
                             emulator_rate=0.002, delivery_hours=26.0)
    print(f"  -> {vetted_hits}/300 campaigns filtered "
          f"({vetted_hits / 3:.1f}%)")

    print("\ncohort B: unvetted-style campaigns "
          "(~half of installs never open the app, 2h burst delivery)")
    unvetted_hits = run_cohort(store, rng, "Unvetted", 300,
                               open_rate_range=(0.45, 0.7),
                               emulator_rate=0.006, delivery_hours=1.5)
    print(f"  -> {unvetted_hits}/300 campaigns filtered "
          f"({unvetted_hits / 3:.1f}%)")

    print("\ncohort C: emulator farms (pure automation)")
    farm_hits = run_cohort(store, rng, "Farm", 50,
                           open_rate_range=(0.1, 0.3),
                           emulator_rate=0.9, delivery_hours=0.5)
    print(f"  -> {farm_hits}/50 campaigns filtered ({farm_hits * 2:.0f}%)")

    print("\npaper's observation: no decreases for baseline or vetted apps;")
    print("decreases for only ~2% of unvetted-advertised apps --")
    print("'the effectiveness of enforcement on the Google Play Store is")
    print("rather limited.'")


if __name__ == "__main__":
    main()
