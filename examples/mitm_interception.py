#!/usr/bin/env python3
"""Anatomy of the milking infrastructure (paper Section 4.1, Figure 3).

Step by step: bring up an IIP offer wall over TLS, run an affiliate app
on a measurement phone, point the phone at a mitmproxy-style
interception proxy, fuzz the app's UI, and read the decrypted offers
out of the proxy -- then show the two ways interception fails (no CA
installed; certificate pinning), which is why the paper notes that none
of the monitored offer walls used pinning.

Run:  python examples/mitm_interception.py
"""

import random

from repro.affiliates.app import AffiliateAppRuntime, AffiliateAppSpec
from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.offers import ActivityKind, OfferCategory, tasks_for
from repro.iip.offerwall import OfferWallServer
from repro.iip.platform import DeveloperCredentials
from repro.iip.registry import build_platforms
from repro.monitor.fuzzer import UiFuzzer
from repro.net.client import HttpClient
from repro.net.errors import CertificatePinningError, CertificateVerificationError
from repro.net.fabric import NetworkFabric, PacketCapture
from repro.net.proxy import MitmProxy
from repro.net.tls import CertificateAuthority, TrustStore
from repro.users.devices import DeviceFactory


def main() -> None:
    rng = random.Random(42)
    fabric = NetworkFabric()
    root_ca = CertificateAuthority("GlobalTrust Root CA", rng)
    public_trust = TrustStore()
    public_trust.add_root(root_ca.self_certificate())

    # 1. An IIP with a live campaign, serving its wall over TLS.
    ledger = MoneyLedger()
    platforms = build_platforms(ledger, AttributionMediator())
    fyber = platforms["Fyber"]
    fyber.register_developer(DeveloperCredentials(
        developer_id="dev1", tax_id="TAX-1", bank_account="IBAN-1"))
    ledger.mint("dev1", 10_000, day=0)
    campaign = fyber.create_campaign(
        developer_id="dev1", package="com.mmm.trebelmusic",
        app_title="TREBEL Music", description="Install, register, and download a song",
        payout_usd=0.26, category=OfferCategory.ACTIVITY,
        activity_kind=ActivityKind.USAGE,
        tasks=tasks_for(OfferCategory.ACTIVITY, ActivityKind.USAGE),
        installs=5000, start_day=0, end_day=25)
    fyber.launch(campaign.campaign_id, day=0)
    wall = OfferWallServer(fabric, fyber, root_ca, rng, current_day=lambda: 0)

    spec = AffiliateAppSpec(
        package="com.ayet.cashpirate", title="CashPirate",
        installs_display="1M+", integrated_iips=("Fyber",),
        currency_name="pirate coins", points_per_usd=2500.0)
    wall.register_affiliate(spec.wall_config())
    print(f"offer wall live at https://{wall.hostname}/api/v1/offers")

    # 2. The interception proxy, with its own CA.
    mitm = MitmProxy(fabric, "mitm.lab.example",
                     fabric.asn_db.allocate(14061, rng), rng,
                     upstream_trust=public_trust)
    print(f"mitm proxy live at {mitm.hostname}:{mitm.port}")

    # 3. The measurement phone, with the proxy's CA installed (the
    #    "self-signed certificate on the Android phone" of Section 4.1).
    phone_trust = TrustStore()
    phone_trust.add_root(root_ca.self_certificate())
    phone_trust.add_root(mitm.ca_certificate())
    phone = DeviceFactory(fabric.asn_db, rng).real_phone(
        "US", trust_store=phone_trust)
    client = HttpClient(fabric, phone.endpoint, phone.trust_store, rng,
                        proxy=(mitm.hostname, mitm.port))

    # 4. Fuzz the affiliate app's UI; watch the wire while we do.
    capture = PacketCapture(fabric)
    runtime = AffiliateAppRuntime(spec, client, {"Fyber": wall})
    report = UiFuzzer().run(runtime)
    print(f"fuzzer: opened tabs {report.tabs_opened}, "
          f"{report.scrolls} scrolls")

    # 5. The decrypted offers, read out of the proxy.
    print(f"\nintercepted {len(mitm.intercepted)} HTTPS exchange(s):")
    for exchange in mitm.intercepted:
        payload = exchange.response.json()
        for offer in payload["offers"]:
            print(f"  [{payload['iip']}] {offer['app']['title']!r}: "
                  f"{offer['description']!r} -> "
                  f"{offer['payout']['points']} {offer['payout']['currency']}")

    # Archive the decrypted flows the way mitmproxy studies do.
    import tempfile
    from pathlib import Path
    from repro.net.har import save_har
    har_path = Path(tempfile.gettempdir()) / "offerwall_flows.har"
    entries = save_har(mitm.intercepted, har_path)
    print(f"\narchived {entries} decrypted flow(s) to {har_path} (HAR 1.2)")

    wall_frames = [f for f in capture.frames
                   if f.destination_host == wall.hostname]
    plaintext_hits = sum(b"TREBEL" in f.payload for f in wall_frames)
    print(f"\non the wire: {len(wall_frames)} frames to the wall, "
          f"{plaintext_hits} containing plaintext (TLS is real)")

    # 6. Failure mode 1: no CA installed -> handshake fails, nothing seen.
    stock_phone = DeviceFactory(fabric.asn_db, rng).real_phone("US")
    stock_phone.trust_store.add_root(root_ca.self_certificate())
    stock_client = HttpClient(fabric, stock_phone.endpoint,
                              stock_phone.trust_store, rng,
                              proxy=(mitm.hostname, mitm.port))
    stock_runtime = AffiliateAppRuntime(spec, stock_client, {"Fyber": wall})
    stock_runtime.open()
    try:
        stock_runtime.select_tab("Fyber")
    except CertificateVerificationError as exc:
        print(f"\nwithout the mitm CA installed: {type(exc).__name__}: {exc}")

    # 7. Failure mode 2: certificate pinning defeats interception.
    pins = {wall.hostname: wall._server.identity.leaf.fingerprint()}
    pinned_client = HttpClient(fabric, phone.endpoint, phone.trust_store, rng,
                               proxy=(mitm.hostname, mitm.port),
                               pinned_fingerprints=pins)
    pinned_runtime = AffiliateAppRuntime(spec, pinned_client, {"Fyber": wall})
    pinned_runtime.open()
    try:
        pinned_runtime.select_tab("Fyber")
    except CertificatePinningError as exc:
        print(f"with certificate pinning: {type(exc).__name__}: {exc}")
    print("\n(no offer wall in the paper pinned its keys -- "
          "which is what made the study possible)")


if __name__ == "__main__":
    main()
