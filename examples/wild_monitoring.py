#!/usr/bin/env python3
"""In-the-wild monitoring: the paper's Section-4 pipeline, scaled down.

Populates a world with advertised apps running incentivized campaigns
on all seven IIPs plus a baseline app set, then runs the measurement
infrastructure -- the Appium-style UI fuzzer driving the eight
instrumented affiliate apps through a TLS-intercepting proxy behind
rotating VPN country exits, and the every-other-day Play Store crawler
-- and prints the core evaluation tables.

Run:  python examples/wild_monitoring.py [--scale 0.25] [--days 60]
"""

import argparse

from repro import World, WildScenario, WildScenarioConfig
from repro.analysis.appstore_impact import (
    install_increase_comparison,
    top_chart_comparison,
)
from repro.analysis.characterize import iip_summary_table, offer_type_table
from repro.core import WildMeasurement, WildMeasurementConfig
from repro.core.reports import (
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)
from repro.iip.registry import VETTED_IIPS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="fraction of the paper's 922 advertised apps")
    parser.add_argument("--days", type=int, default=60,
                        help="measurement window length in days")
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    world = World(seed=args.seed)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=args.scale, measurement_days=args.days))
    scenario.build()
    print(f"world built: {len(scenario.advertised)} advertised apps, "
          f"{len(scenario.baseline)} baseline apps")

    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=args.days))
    results = measurement.run()
    print(f"measurement done: {results.milk_runs} milk runs, "
          f"{results.crawl_requests} crawl requests, "
          f"{results.dataset.offer_count()} offers from "
          f"{len(results.dataset.unique_packages())} apps")
    print()

    observed_walls = {}
    for observation in results.observations:
        observed_walls.setdefault(observation.affiliate_package,
                                  set()).add(observation.iip_name)
    print(render_table2(observed_walls))
    print()
    print(render_table3(offer_type_table(results.dataset)))
    print()
    print(render_table4(iip_summary_table(results.dataset, results.archive,
                                          VETTED_IIPS)))
    print()
    vetted = results.vetted_packages()
    unvetted = results.unvetted_packages()
    print(render_table5(install_increase_comparison(
        results.archive, results.dataset, vetted, unvetted,
        results.baseline_packages, results.baseline_window)))
    print()
    print(render_table6(top_chart_comparison(
        results.archive, results.dataset, vetted, unvetted,
        results.baseline_packages, results.baseline_window)))


if __name__ == "__main__":
    main()
