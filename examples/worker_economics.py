#!/usr/bin/env python3
"""Figure 1 walk-through: one dollar through the ecosystem.

A developer funds a campaign on an IIP; the offer reaches a crowd
worker through an affiliate app; the worker installs, completes the
task, the attribution mediator certifies the conversion, and the payout
waterfall splits the advertiser's money between the IIP, the affiliate,
the worker, and the mediator.  Prints every ledger entry.

Run:  python examples/worker_economics.py
"""

import random

from repro.affiliates.app import AffiliateAppRuntime, AffiliateAppSpec
from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.offers import ActivityKind, OfferCategory, tasks_for
from repro.iip.offerwall import OfferWallServer
from repro.iip.platform import DeveloperCredentials
from repro.iip.registry import build_platforms
from repro.net.client import HttpClient
from repro.net.fabric import NetworkFabric
from repro.net.tls import CertificateAuthority, TrustStore
from repro.users.devices import DeviceFactory
from repro.users.worker import Worker, WorkerBehavior


def main() -> None:
    rng = random.Random(7)
    fabric = NetworkFabric()
    root_ca = CertificateAuthority("GlobalTrust Root CA", rng)
    trust = TrustStore()
    trust.add_root(root_ca.self_certificate())

    ledger = MoneyLedger()
    mediator = AttributionMediator()
    platforms = build_platforms(ledger, mediator)
    offertoro = platforms["OfferToro"]

    # 1a/1b: the developer passes review and deposits money.
    offertoro.register_developer(DeveloperCredentials(
        developer_id="dev-studio", tax_id="TAX-9", bank_account="IBAN-9"))
    ledger.mint("dev-studio", 2_000.0, day=0, memo="campaign budget")
    campaign = offertoro.create_campaign(
        developer_id="dev-studio", package="com.studio.cardquest",
        app_title="Card Quest",
        description="Install and create an account",
        payout_usd=0.34, category=OfferCategory.ACTIVITY,
        activity_kind=ActivityKind.REGISTRATION,
        tasks=tasks_for(OfferCategory.ACTIVITY, ActivityKind.REGISTRATION),
        installs=100, start_day=0, end_day=25)
    offertoro.launch(campaign.campaign_id, day=0)
    print(f"campaign live: {campaign.offer.description!r} "
          f"paying ${campaign.offer.payout_usd:.2f}/completion, "
          f"advertiser cost ${campaign.advertiser_cost_per_install_usd:.2f}")

    # 2: the offer is pushed to an affiliate app's wall.
    wall = OfferWallServer(fabric, offertoro, root_ca, rng,
                           current_day=lambda: 0)
    spec = AffiliateAppSpec(
        package="com.bigcash.app", title="BigCash", installs_display="1M+",
        integrated_iips=("OfferToro",), currency_name="points",
        points_per_usd=10_000.0)
    wall.register_affiliate(spec.wall_config())

    # 3/4: a worker browses the wall on their phone and works the offer.
    factory = DeviceFactory(fabric.asn_db, rng)
    worker = Worker("worker-ph-01", factory.real_phone("PH", trust_store=trust),
                    WorkerBehavior(abandon_activity_probability=0.0))
    client = HttpClient(fabric, worker.device.endpoint,
                        worker.device.trust_store, rng)
    runtime = AffiliateAppRuntime(spec, client, {"OfferToro": wall},
                                  platforms)
    runtime.open()
    runtime.select_tab("OfferToro")
    wall_offer = runtime.visible_offers()[0]
    print(f"worker sees: {wall_offer.title!r} -> "
          f"{wall_offer.points} {wall_offer.currency}")

    result = worker.work_offer(campaign.offer, day=0, rng=rng)
    print(f"worker completed tasks: {', '.join(result.tasks_completed)} "
          f"(registered={result.registered}, "
          f"{result.session_seconds:.0f}s in app)")

    # 5/6/7: completion is certified and the payout waterfall runs.
    paid = runtime.complete_offer(wall_offer, worker, result, day=0)
    print(f"mediator certified: {mediator.certify(wall_offer.offer_id, worker.device.device_id)}, "
          f"paid: {paid}")

    print("\nledger entries:")
    for entry in ledger.entries:
        print(f"  day {entry.day}: {entry.source:>12} -> "
              f"{entry.destination:<14} ${entry.amount_usd:8.4f}  ({entry.memo})")

    print("\nfinal balances:")
    for owner in ("dev-studio", "OfferToro", "com.bigcash.app",
                  "worker-ph-01", mediator.name):
        print(f"  {owner:<20} ${ledger.wallet(owner).balance_usd:10.4f}")
    print(f"\nworker's in-app balance: {worker.points_earned:.0f} points "
          f"(redeemable for ~${worker.points_earned / 10_000:.2f} in gift cards)")


if __name__ == "__main__":
    main()
