#!/usr/bin/env python3
"""Lockstep detection: the defense the paper proposes (Section 5.2).

"Our proposed measurements can provide a ground truth of apps to help
train machine learning models in detecting the lockstep behavior of
users who perform similar in-app activities to complete the offer."

This example builds a labelled install corpus (organic users + crowd
workers + one device farm), runs the CopyCatch-style detector over it,
and prints per-cluster findings, a precision/recall sweep, and the
store-side policy candidates (apps repeatedly receiving lockstep
bursts).

Run:  python examples/lockstep_detection.py
"""

from repro.detection.bridge import build_training_corpus
from repro.detection.evaluation import evaluate_detector, sweep_thresholds
from repro.detection.lockstep import LockstepDetector


def main() -> None:
    log, incentivized = build_training_corpus(seed=2019)
    print(f"labelled corpus: {len(log)} install events, "
          f"{len(log.devices())} devices "
          f"({len(incentivized)} ground-truth incentivized)")

    detector = LockstepDetector()
    clusters = detector.find_bursts(log)
    print(f"\n{len(clusters)} lockstep cluster(s) found:")
    for cluster in clusters:
        farm = (f", {cluster.dominant_slash24} farm"
                if cluster.dominant_slash24 else "")
        print(f"  {cluster.package}: {cluster.size} devices in "
              f"{cluster.span_hours:.1f}h, "
              f"{cluster.low_engagement_fraction:.0%} low engagement{farm}")

    flagged = detector.flag_devices(log)
    report = evaluate_detector(flagged, incentivized, log.devices())
    print(f"\nflagged {len(flagged)} devices: precision "
          f"{report.precision:.2f}, recall {report.recall:.2f}, "
          f"FPR {report.false_positive_rate:.3f}")

    print("\nprecision/recall at suspicion-score thresholds:")
    scores = detector.suspicion_scores(log)
    for threshold, r in sweep_thresholds(scores, incentivized, log.devices(),
                                         [0.5, 1.0, 1.5, 2.0, 3.0]):
        print(f"  score >= {threshold:.1f}: precision {r.precision:.2f} "
              f"recall {r.recall:.2f} (flagged "
              f"{r.true_positives + r.false_positives})")

    print("\nstore-side policy candidates (apps with repeated bursts):")
    for package in detector.flag_apps(log, min_clusters=1):
        print(f"  {package}")
    print("\n(every candidate is an advertised app; no organic app "
          "was flagged)")


if __name__ == "__main__":
    main()
