#!/usr/bin/env python3
"""Quickstart: reproduce the paper's Section-3 honey-app experiment.

Builds a simulated ecosystem (Play Store, the seven IIPs of Table 1,
offer walls, a telemetry collection server -- all speaking HTTPS over
an in-process network), publishes an instrumented "voice memos" honey
app, purchases 500 no-activity installs from Fyber, ayeT-Studios, and
RankApp, and prints the paper's Section-3 measurements.

Run:  python examples/quickstart.py
"""

from repro import HoneyAppExperiment, World
from repro.core.reports import render_honey_report, render_table1


def main() -> None:
    print(render_table1())
    print()

    print("Building the world and running the honey-app experiment...")
    world = World(seed=2019)
    experiment = HoneyAppExperiment(world)
    results = experiment.run()

    print()
    print(render_honey_report(results))
    print()
    print("Paper expectation: 1,679 installs total, install count 0 -> 1,000+,")
    print("44%/44%/6% record-button click rates, a ~20-device farm on one /24,")
    print("and a mean incentivized install cost of a few cents.")


if __name__ == "__main__":
    main()
