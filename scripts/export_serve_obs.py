"""Export the serving bench: ``BENCH_serve.json``.

Runs the always-on detection/analytics service twice at the bench
parameters — one clean run and one under the ``paper`` chaos profile —
each with the seeded query-heavy client fleet, and reports per endpoint
the ``serve.request_ops`` and virtual-latency percentiles
(p50/p95/p99), the admission counters (offered/admitted/shed, zero
unshed queue overflows), the watermark-cache hit rate, and the
detection quality (online == batch, precision/recall against the
fleet's ground truth).

A third clean run under the historical ``wholesale`` cache policy
(every ingest clears the whole response cache) feeds the
``cache_policy`` section: keyed vs wholesale hit rates and the delta
the per-entry invalidation buys, with the detection section pinned
identical across policies.

Two outputs:

* ``BENCH_serve.json`` (``--out``): the full report including wall
  times — informative, not deterministic, uploaded as a CI artifact.
* ``benchmarks/snapshots/serve_obs.json`` (``--snapshot-out``): the
  deterministic subset (no wall times), committed to the repo.
  ``--check`` fails if a fresh run drifts from it, which gates the
  service's latency/admission/quality numbers against silent
  regressions.

Run from the repo root::

    PYTHONPATH=src python scripts/export_serve_obs.py

Scale/seed come from ``REPRO_BENCH_SERVE_*`` variables; the committed
snapshot records them, so a check run under different values reports
parameter drift rather than corruption.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from obs_export import deterministic_subset, emit_report, render
from repro.serve import ServeRunConfig, run_serve

SEED = int(os.environ.get("REPRO_BENCH_SERVE_SEED", "2019"))
DAYS = int(os.environ.get("REPRO_BENCH_SERVE_DAYS", "1"))
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "4"))
SHARDS = int(os.environ.get("REPRO_BENCH_SERVE_SHARDS", "2"))
QPS = float(os.environ.get("REPRO_BENCH_SERVE_QPS", "1.0"))
REQUESTS_PER_CLIENT_DAY = float(
    os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "400"))

#: Pinned chaos lane: same profile/seed the chaos snapshot uses.
CHAOS_PROFILE = "paper"
CHAOS_SEED = 7

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"
DEFAULT_SNAPSHOT = REPO_ROOT / "benchmarks/snapshots/serve_obs.json"


def run_section(chaos_profile: str, chaos_seed,
                cache_policy: str = "keyed") -> tuple:
    config = ServeRunConfig(
        seed=SEED,
        days=DAYS,
        clients=CLIENTS,
        qps=QPS,
        shards=SHARDS,
        profile="query-heavy",
        chaos_profile=chaos_profile,
        chaos_seed=chaos_seed,
        requests_per_client_day=REQUESTS_PER_CLIENT_DAY,
        cache_policy=cache_policy,
    )
    started = time.monotonic()
    result = run_serve(config)
    return result, time.monotonic() - started


def build_report() -> dict:
    clean, clean_elapsed = run_section("off", None)
    chaos, chaos_elapsed = run_section(CHAOS_PROFILE, CHAOS_SEED)
    wholesale, wholesale_elapsed = run_section(
        "off", None, cache_policy="wholesale")
    keyed_cache = clean.report["cache"]
    wholesale_cache = wholesale.report["cache"]
    report = {
        "run": {
            "seed": SEED,
            "days": DAYS,
            "clients": CLIENTS,
            "shards": SHARDS,
            "qps": QPS,
            "requests_per_client_day": REQUESTS_PER_CLIENT_DAY,
            "profile": "query-heavy",
            "chaos_profile": CHAOS_PROFILE,
            "chaos_seed": CHAOS_SEED,
        },
        "clean": clean.report,
        "chaos": chaos.report,
        "cache_policy": {
            "keyed": keyed_cache,
            "wholesale": wholesale_cache,
            "hit_rate_delta": round(
                keyed_cache["hit_rate"] - wholesale_cache["hit_rate"], 4),
            # The policy only changes what is served from cache, never
            # what the detector concludes.
            "detection_unchanged": (wholesale.report["detection"]
                                    == clean.report["detection"]),
        },
    }
    report["wall_seconds"] = {
        "clean": round(clean_elapsed, 2),
        "chaos": round(chaos_elapsed, 2),
        "wholesale": round(wholesale_elapsed, 2),
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="full serve bench report (with wall times)")
    parser.add_argument("--snapshot-out", type=Path, default=DEFAULT_SNAPSHOT,
                        help="deterministic subset, committed")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the committed snapshot "
                             "does not match a fresh run")
    args = parser.parse_args()
    return emit_report("serve", build_report(), args.out,
                       args.snapshot_out, args.check,
                       "export_serve_obs.py")


if __name__ == "__main__":
    raise SystemExit(main())
