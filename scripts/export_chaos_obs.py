"""Export the fault/retry counter snapshot of a canonical chaos run.

Writes ``benchmarks/snapshots/chaos_obs.json``: every fault-injection,
retry, breaker, and coverage-loss counter from one wild run under the
``paper`` chaos profile with pinned seeds.  The snapshot is committed,
so diffing it across revisions shows exactly how a change moved the
resilience behaviour (more retries, fewer walls lost, ...).

Run from the repo root::

    PYTHONPATH=src python scripts/export_chaos_obs.py
"""

from __future__ import annotations

import argparse
from pathlib import Path

from obs_export import emit_snapshot, render
from repro import (
    ChaosScenario,
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)

#: Pinned run parameters: change them and the snapshot is a new baseline.
SEED = 2019
CHAOS_SEED = 7
CHAOS_PROFILE = "paper"
SCALE = 0.06
DAYS = 20

#: Counter-name prefixes that belong in the resilience snapshot.
PREFIXES = (
    "net.fabric.faults_raised",
    "net.fabric.frames_corrupted",
    "net.server.chaos_",
    "net.client.retries",
    "net.client.retried_statuses",
    "net.client.gave_up",
    "net.client.backoff_ops",
    "net.client.request_failures",
    "net.client.proxy_refusals",
    "net.client.circuit_",
    "net.proxy.connect_failures",
    "net.proxy.intercept_failures",
    "net.proxy.upstream_refusals",
    "monitor.milk_partial",
    "monitor.walls_lost",
    "monitor.corrupt_",
    "monitor.crawl_failures",
    "monitor.crawl_retry_",
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / (
    "benchmarks/snapshots/chaos_obs.json")


def run_chaos_world() -> tuple:
    chaos = ChaosScenario.profile(CHAOS_PROFILE, seed=CHAOS_SEED)
    world = World(seed=SEED, chaos=chaos)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    results = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS)).run()
    return world, results


def build_snapshot() -> dict:
    world, results = run_chaos_world()
    counters = {
        key: value
        for key, value in world.obs.metrics.counters().items()
        if key.startswith(PREFIXES)
    }
    loss = results.coverage_loss
    return {
        "run": {
            "seed": SEED,
            "chaos_profile": CHAOS_PROFILE,
            "chaos_seed": CHAOS_SEED,
            "scale": SCALE,
            "days": DAYS,
        },
        "coverage_loss": {
            "faults_injected": loss.faults_injected,
            "frames_corrupted": loss.frames_corrupted,
            "server_faults": loss.server_faults,
            "retries": loss.retries,
            "gave_up": loss.gave_up,
            "faults_survived": loss.faults_survived,
            "walls_lost": loss.walls_lost,
            "partial_milk_runs": loss.partial_milk_runs,
            "crawl_failures": loss.crawl_failures,
            "crawl_gaps": loss.crawl_gaps,
        },
        "counters": counters,
    }


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the committed snapshot "
                             "does not match a fresh run")
    args = parser.parse_args()
    return emit_snapshot("chaos", render(build_snapshot()), args.out,
                         args.check, "export_chaos_obs.py")


if __name__ == "__main__":
    raise SystemExit(main())
