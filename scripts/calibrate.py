"""Calibration harness: run the full wild measurement and print every
table next to the paper's values.  Used during development to tune the
scenario constants in repro.simulation.scenarios."""

import argparse
import time

from repro import World, WildScenario, WildScenarioConfig
from repro.analysis.appstore_impact import (
    enforcement_decreases,
    install_increase_comparison,
    top_chart_comparison,
)
from repro.analysis.characterize import (
    iip_summary_table,
    install_count_histogram,
    offer_type_table,
)
from repro.analysis.funding import (
    funded_offer_breakdown,
    funded_packages,
    funding_comparison,
)
from repro.analysis.monetization import (
    ad_library_distribution,
    arbitrage_stats,
    split_packages_by_offer_type,
)
from repro.core import WildMeasurement, WildMeasurementConfig
from repro.core import reports
from repro.iip.registry import VETTED_IIPS


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--days", type=int, default=110)
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    t0 = time.time()
    world = World(seed=args.seed)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=args.scale, measurement_days=args.days))
    scenario.build()
    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=args.days))
    results = measurement.run()
    print(f"[{time.time()-t0:.0f}s] measurement complete: "
          f"{results.dataset.offer_count()} offers, "
          f"{len(results.dataset.unique_packages())} apps, "
          f"{results.milk_runs} milk runs, "
          f"{results.crawl_requests} crawl requests")

    dataset, archive = results.dataset, results.archive
    print()
    print(reports.render_table3(offer_type_table(dataset)))
    print("  [paper: 47%/$0.06, 53%/$0.52, 37%/$0.50, 11%/$0.34, 5%/$2.98]")
    print()
    print(reports.render_table4(iip_summary_table(dataset, archive, VETTED_IIPS)))
    print()
    vetted = results.vetted_packages()
    unvetted = [p for p in results.unvetted_packages() if p not in set(vetted)]
    t5 = install_increase_comparison(archive, dataset, vetted, unvetted,
                                     results.baseline_packages,
                                     results.baseline_window)
    print(reports.render_table5(t5))
    print("  [paper: baseline 2%, vetted 12% (chi2 26.0), unvetted 16% (chi2 39.9)]")
    print()
    t6 = top_chart_comparison(archive, dataset, vetted, unvetted,
                              results.baseline_packages,
                              results.baseline_window)
    print(reports.render_table6(t6))
    print("  [paper: baseline 3.1%, vetted 7.5% (chi2 5.43 p.02), unvetted 2.5% (chi2 .22 p.64)]")
    print()
    t7 = funding_comparison(archive, dataset, results.snapshot, vetted,
                            unvetted, results.baseline_packages,
                            results.baseline_window[0])
    print(reports.render_table7(t7))
    print("  [paper: baseline 6.1% of 82, vetted 15.6% of 192 (chi2 4.7), "
          "unvetted 13.9% of 79 (chi2 2.8); match 27%/39%/15%]")
    print()
    funded_vetted = funded_packages(archive, dataset, results.snapshot, vetted)
    print(reports.render_table8(funded_offer_breakdown(dataset, funded_vetted)))
    print("  [paper: 67%/$0.12 no-activity, 63%/$0.92 activity, N=30]")
    print()
    baseline_installs = [archive.first_profile(p).installs_floor
                         for p in results.baseline_packages
                         if archive.first_profile(p)]
    print(reports.render_fig4(install_count_histogram(baseline_installs)))
    print()
    groups = dict(split_packages_by_offer_type(dataset))
    groups["Vetted"] = vetted
    groups["Unvetted"] = unvetted
    groups["Baseline"] = results.baseline_packages
    print(reports.render_fig6(ad_library_distribution(results.apk_scan, groups)))
    print("  [paper >=5 libs: activity 60%, no-activity 25%, "
          "vetted 55%, unvetted 20%, baseline 35%]")
    print()
    print(reports.render_arbitrage(arbitrage_stats(dataset, VETTED_IIPS)))
    print("  [paper: 3.9% overall, 7% vetted, 2% unvetted]")
    print()
    print(reports.render_enforcement(enforcement_decreases(archive, {
        "Baseline": results.baseline_packages,
        "Vetted": vetted,
        "Unvetted": unvetted,
    })))
    print("  [paper: 0 baseline, 0 vetted, ~2% unvetted]")
    print(f"\ntotal elapsed {time.time()-t0:.0f}s")


if __name__ == "__main__":
    main()
