"""Export the detection bench: ``BENCH_detect.json``.

Runs both live detection lanes — the Section-3 honey telemetry and the
Section-4 wild monitor — through :class:`repro.detection.LiveDetection`
and reports, per source: the event/cluster/flagged counts, the
precision/recall/F1/FPR against the simulation's ground truth, and a
``stream_equals_batch`` flag (the online detector's flagged set
re-checked against a batch :class:`LockstepDetector` replay of the
identical log).

Two outputs:

* ``BENCH_detect.json`` (``--out``): the full report including wall
  times — informative, not deterministic, uploaded as a CI artifact.
* ``benchmarks/snapshots/detect_obs.json`` (``--snapshot-out``): the
  deterministic subset (no wall times), committed to the repo.
  ``--check`` fails if a fresh run drifts from it, which gates the
  detector's quality numbers against silent regressions.

Run from the repo root::

    PYTHONPATH=src python scripts/export_detect_obs.py

Scale/seed come from ``REPRO_BENCH_*`` variables; the committed
snapshot records them, so a check run under different values reports
parameter drift rather than corruption.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from obs_export import deterministic_subset, emit_report, render
from repro import (
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)
from repro.core import HoneyAppExperiment
from repro.detection.lockstep import LockstepDetector
from repro.detection.live import HONEY_DETECTOR_CONFIG

SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))
SHARDS = int(os.environ.get("REPRO_BENCH_DETECT_SHARDS", "1"))
WILD_SCALE = float(os.environ.get("REPRO_BENCH_DETECT_SCALE", "0.05"))
WILD_DAYS = int(os.environ.get("REPRO_BENCH_DETECT_DAYS", "14"))
HONEY_INSTALLS = int(os.environ.get("REPRO_BENCH_DETECT_INSTALLS", "500"))

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_detect.json"
DEFAULT_SNAPSHOT = REPO_ROOT / "benchmarks/snapshots/detect_obs.json"


def run_honey_source() -> tuple:
    world = World(seed=SEED)
    hook = world.detection_hook("honey", config=HONEY_DETECTOR_CONFIG)
    started = time.monotonic()
    HoneyAppExperiment(world, installs_per_iip=HONEY_INSTALLS,
                       shards=SHARDS, detection=hook).run()
    return world, hook, time.monotonic() - started


def run_wild_source() -> tuple:
    world = World(seed=SEED)
    hook = world.detection_hook("wild")
    scenario = WildScenario(world, WildScenarioConfig(
        scale=WILD_SCALE, measurement_days=WILD_DAYS))
    scenario.build()
    started = time.monotonic()
    WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=WILD_DAYS, shards=SHARDS), detection=hook).run()
    return world, hook, time.monotonic() - started


def source_report(world, hook) -> dict:
    flagged = hook.finalize()
    evaluation = hook.evaluate()
    batch = LockstepDetector(hook.config).flag_devices(hook.log)
    total = world.obs.metrics.counter_total
    return {
        "stream": {
            "events": hook.bus.events_published,
            "devices": len(hook.log.devices()),
            "incentivized": len(hook.incentivized),
            "clusters": len(hook.online.clusters),
            "flagged": len(flagged),
            "events_ingested_counter":
                int(total("detection.events_ingested")),
        },
        "quality": {
            "precision": round(evaluation.precision, 4),
            "recall": round(evaluation.recall, 4),
            "f1": round(evaluation.f1, 4),
            "false_positive_rate":
                round(evaluation.false_positive_rate, 4),
        },
        "stream_equals_batch": flagged == batch,
    }


def build_report() -> dict:
    honey_world, honey_hook, honey_elapsed = run_honey_source()
    wild_world, wild_hook, wild_elapsed = run_wild_source()
    report = {
        "run": {
            "seed": SEED,
            "shards": SHARDS,
            "wild_scale": WILD_SCALE,
            "wild_days": WILD_DAYS,
            "honey_installs_per_iip": HONEY_INSTALLS,
        },
        "honey": source_report(honey_world, honey_hook),
        "wild": source_report(wild_world, wild_hook),
    }
    report["wall_seconds"] = {
        "honey": round(honey_elapsed, 2),
        "wild": round(wild_elapsed, 2),
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="full detect bench report (with wall times)")
    parser.add_argument("--snapshot-out", type=Path, default=DEFAULT_SNAPSHOT,
                        help="deterministic subset, committed")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the committed snapshot "
                             "does not match a fresh run")
    args = parser.parse_args()
    return emit_report("detect", build_report(), args.out,
                       args.snapshot_out, args.check,
                       "export_detect_obs.py")


if __name__ == "__main__":
    raise SystemExit(main())
