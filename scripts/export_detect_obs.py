"""Export the detection bench: ``BENCH_detect.json``.

Runs both live detection lanes — the Section-3 honey telemetry and the
Section-4 wild monitor — through :class:`repro.detection.LiveDetection`
and reports, per source: the event/cluster/flagged counts, the
precision/recall/F1/FPR against the simulation's ground truth, and a
``stream_equals_batch`` flag (the online detector's flagged set
re-checked against a batch :class:`LockstepDetector` replay of the
identical log).

On top of the naive lanes, the ``scenarios`` section runs the
adversarial profiles: the evasive profile against both sources (naive
degradation plus hardened-detector recovery), the fake-review campaign
burst against the review-spam detector, and the chart-boost download
fraud against the spike/deficit detector.  The naive ``honey``/``wild``
subtrees are computed exactly as before, so adversarial code drifting
into the naive path shows up as snapshot drift here.

Two outputs:

* ``BENCH_detect.json`` (``--out``): the full report including wall
  times — informative, not deterministic, uploaded as a CI artifact.
* ``benchmarks/snapshots/detect_obs.json`` (``--snapshot-out``): the
  deterministic subset (no wall times), committed to the repo.
  ``--check`` fails if a fresh run drifts from it, which gates the
  detector's quality numbers against silent regressions.

Run from the repo root::

    PYTHONPATH=src python scripts/export_detect_obs.py

Scale/seed come from ``REPRO_BENCH_*`` variables; the committed
snapshot records them, so a check run under different values reports
parameter drift rather than corruption.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from obs_export import deterministic_subset, emit_report, render
from repro import (
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)
from repro.core import HoneyAppExperiment
from repro.detection import HardenedDetectorConfig, HardenedLockstepDetector
from repro.detection.evaluation import evaluate_detector
from repro.detection.lockstep import LockstepDetector
from repro.detection.live import HONEY_DETECTOR_CONFIG
from repro.scenarios import (
    DownloadFraudDetector,
    EvasiveLiveDetection,
    ReviewSpamDetector,
    parse_scenario,
)
from repro.scenarios.downloadfraud import rank_trajectory

SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))
SHARDS = int(os.environ.get("REPRO_BENCH_DETECT_SHARDS", "1"))
WILD_SCALE = float(os.environ.get("REPRO_BENCH_DETECT_SCALE", "0.05"))
WILD_DAYS = int(os.environ.get("REPRO_BENCH_DETECT_DAYS", "14"))
HONEY_INSTALLS = int(os.environ.get("REPRO_BENCH_DETECT_INSTALLS", "500"))

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_detect.json"
DEFAULT_SNAPSHOT = REPO_ROOT / "benchmarks/snapshots/detect_obs.json"


def run_honey_source() -> tuple:
    world = World(seed=SEED)
    hook = world.detection_hook("honey", config=HONEY_DETECTOR_CONFIG)
    started = time.monotonic()
    HoneyAppExperiment(world, installs_per_iip=HONEY_INSTALLS,
                       shards=SHARDS, detection=hook).run()
    return world, hook, time.monotonic() - started


def run_wild_source(profile: str = "naive") -> tuple:
    world = World(seed=SEED)
    hook = world.detection_hook("wild")
    scenario = WildScenario(world, WildScenarioConfig(
        scale=WILD_SCALE, measurement_days=WILD_DAYS,
        scenario=parse_scenario(profile)))
    scenario.build()
    started = time.monotonic()
    WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=WILD_DAYS, shards=SHARDS), detection=hook).run()
    return world, scenario, hook, time.monotonic() - started


def run_honey_evasive() -> tuple:
    pack = parse_scenario("evasive")
    world = World(seed=SEED)
    hook = EvasiveLiveDetection(
        pack.evasion, world.seeds.seed_for("honey-evasion"),
        obs=world.obs, source="honey", config=HONEY_DETECTOR_CONFIG)
    started = time.monotonic()
    HoneyAppExperiment(world, installs_per_iip=HONEY_INSTALLS,
                       shards=SHARDS, detection=hook).run()
    return world, hook, time.monotonic() - started


def source_report(world, hook) -> dict:
    flagged = hook.finalize()
    evaluation = hook.evaluate()
    batch = LockstepDetector(hook.config).flag_devices(hook.log)
    total = world.obs.metrics.counter_total
    return {
        "stream": {
            "events": hook.bus.events_published,
            "devices": len(hook.log.devices()),
            "incentivized": len(hook.incentivized),
            "clusters": len(hook.online.clusters),
            "flagged": len(flagged),
            "events_ingested_counter":
                int(total("detection.events_ingested")),
        },
        "quality": {
            "precision": round(evaluation.precision, 4),
            "recall": round(evaluation.recall, 4),
            "f1": round(evaluation.f1, 4),
            "false_positive_rate":
                round(evaluation.false_positive_rate, 4),
        },
        "stream_equals_batch": flagged == batch,
    }


def _quality(evaluation) -> dict:
    return {
        "precision": round(evaluation.precision, 4),
        "recall": round(evaluation.recall, 4),
        "false_positive_rate": round(evaluation.false_positive_rate, 4),
    }


def _hardened_recovery(hook, config=None) -> dict:
    """Naive degradation vs hardened recovery on one evaded log."""
    detector = HardenedLockstepDetector(config)
    flagged = detector.flag_devices(hook.log)
    universe = set(hook.log.devices())
    recovered = evaluate_detector(flagged, hook.incentivized & universe,
                                  universe)
    report = _quality(recovered)
    report["flagged"] = len(flagged)
    return {"naive": _quality(hook.evaluate()), "hardened": report}


def evasive_report() -> tuple:
    _world, _scenario, wild_hook, wild_elapsed = run_wild_source("evasive")
    _hworld, honey_hook, honey_elapsed = run_honey_evasive()
    report = {
        "wild": _hardened_recovery(wild_hook),
        # Honey devices install exactly one app each: the co-install
        # graph is definitionally empty, so burst evidence alone
        # carries the flag (same special case as the CLI).
        "honey": _hardened_recovery(
            honey_hook, HardenedDetectorConfig(flag_threshold=1.0)),
    }
    return report, wild_elapsed + honey_elapsed


def fake_reviews_report() -> tuple:
    world, scenario, _hook, elapsed = run_wild_source("fake-reviews")
    book = world.store.reviews
    paid = scenario.paid_reviewer_ids()
    evaluation = ReviewSpamDetector().evaluate(book, paid)
    report = {
        "reviews": len(book),
        "reviewed_apps": len(book.packages()),
        "reviewers": len(book.reviewers()),
        "paid_reviewers": len(paid),
        "quality": _quality(evaluation),
    }
    return report, elapsed


def download_fraud_report() -> tuple:
    world, scenario, _hook, elapsed = run_wild_source("download-fraud")
    packages = scenario.advertised_packages() + scenario.baseline_packages()
    through_day = WILD_DAYS - 1
    evaluation = DownloadFraudDetector().evaluate(
        world.store, packages, scenario.fraud_packages(), through_day)
    plans = scenario.boost_plans()
    boost_ids = {plan.campaign_id for plan in plans}
    apps = []
    for plan in plans:
        trajectory = rank_trajectory(world.store, plan.package,
                                     plan.start_day,
                                     min(plan.end_day + 3, through_day))
        ranks = [rank for _, rank in trajectory if rank is not None]
        takedown = next(
            (action.day for action
             in world.store.enforcement.actions_for(plan.package)
             if action.campaign_id in boost_ids), None)
        apps.append({
            "package": plan.package,
            "spike_days": [plan.start_day, plan.end_day],
            "best_rank": min(ranks) if ranks else None,
            "takedown_day": takedown,
        })
    report = {
        "boosted_apps": apps,
        "quality": _quality(evaluation),
    }
    return report, elapsed


def build_report() -> dict:
    honey_world, honey_hook, honey_elapsed = run_honey_source()
    wild_world, _scenario, wild_hook, wild_elapsed = run_wild_source()
    evasive, evasive_elapsed = evasive_report()
    reviews, reviews_elapsed = fake_reviews_report()
    fraud, fraud_elapsed = download_fraud_report()
    report = {
        "run": {
            "seed": SEED,
            "shards": SHARDS,
            "wild_scale": WILD_SCALE,
            "wild_days": WILD_DAYS,
            "honey_installs_per_iip": HONEY_INSTALLS,
        },
        "honey": source_report(honey_world, honey_hook),
        "wild": source_report(wild_world, wild_hook),
        "scenarios": {
            "evasive": evasive,
            "fake_reviews": reviews,
            "download_fraud": fraud,
        },
    }
    report["wall_seconds"] = {
        "honey": round(honey_elapsed, 2),
        "wild": round(wild_elapsed, 2),
        "scenario_evasive": round(evasive_elapsed, 2),
        "scenario_fake_reviews": round(reviews_elapsed, 2),
        "scenario_download_fraud": round(fraud_elapsed, 2),
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="full detect bench report (with wall times)")
    parser.add_argument("--snapshot-out", type=Path, default=DEFAULT_SNAPSHOT,
                        help="deterministic subset, committed")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the committed snapshot "
                             "does not match a fresh run")
    args = parser.parse_args()
    return emit_report("detect", build_report(), args.out,
                       args.snapshot_out, args.check,
                       "export_detect_obs.py")


if __name__ == "__main__":
    raise SystemExit(main())
