"""Export ``BENCH_scale.json``: the peak-RSS / throughput trajectory.

The streaming refactor's claim is that the wild pipeline's peak RSS is
bounded by the simulated world, not by the measurement corpus: with
``--batch-devices`` the observation log and crawl archive spill to
disk and every analysis stage folds per chunk, so scaling the device
population 10x must not scale the resident analysis state 10x.  This
exporter measures that trajectory at fixed seed:

* every scale point runs **twice** — streamed (``--batch-devices``)
  and materialised — in a **fresh subprocess each**, because
  ``ru_maxrss`` is a process-wide high-water mark: points sharing a
  process would inherit the biggest run's peak;
* the deterministic per-point counts (offers, packages, install
  events, crawl requests) are pinned in
  ``benchmarks/snapshots/scale_obs.json`` — and the streamed and
  materialised runs must agree on every one of them, which
  ``benchmarks/test_bench_scale.py`` asserts;
* peak RSS, wall time, and devices/sec land in the host-dependent
  sections of ``BENCH_scale.json`` (uploaded as a CI artifact, never
  committed).

``devices_per_sec`` here is simulated install events per wall second:
install volume is the quantity that actually grows with ``--scale``
(milk-run count is fixed per day), so it is the honest throughput axis
for a population-scaling trajectory.

Run from the repo root::

    PYTHONPATH=src python scripts/export_scale_obs.py

Scale points and days come from ``REPRO_SCALE_*`` variables; the
committed snapshot records them, so a check run under different values
reports parameter drift rather than corruption.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from obs_export import deterministic_subset, emit_report, render  # noqa: F401

SEED = int(os.environ.get("REPRO_SCALE_SEED", "2019"))
DAYS = int(os.environ.get("REPRO_SCALE_DAYS", "14"))
BATCH = int(os.environ.get("REPRO_SCALE_BATCH", "256"))
#: The trajectory: today's bench scale, the paper's full population,
#: and the gated 10x point.
POINTS = tuple(
    float(point) for point in
    os.environ.get("REPRO_SCALE_POINTS", "0.35,1.0,3.5").split(","))

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_scale.json"
DEFAULT_SNAPSHOT = REPO_ROOT / "benchmarks/snapshots/scale_obs.json"


def run_point(scale: float, batch_devices: int) -> dict:
    """Run one wild measurement in *this* process and report it.

    Deterministic counts plus this process's ``ru_maxrss`` — callers
    that want a per-point RSS must invoke this in a fresh subprocess
    (``--point`` mode below).
    """
    import resource
    import time

    from repro import (
        WildMeasurement,
        WildMeasurementConfig,
        WildScenario,
        WildScenarioConfig,
        World,
    )

    world = World(seed=SEED)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=scale, measurement_days=DAYS))
    scenario.build()
    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, batch_devices=batch_devices))
    started = time.monotonic()
    results = measurement.run()
    elapsed = time.monotonic() - started
    ledger = world.store.ledger
    install_events = sum(
        ledger.total_installs(package)
        for package in scenario.advertised_packages()
        + results.baseline_packages)
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "scale": scale,
        "batch_devices": batch_devices,
        "offers": results.dataset.offer_count(),
        "advertised_packages": len(results.dataset.unique_packages()),
        "install_events": install_events,
        "milk_runs": results.milk_runs,
        "crawl_requests": results.crawl_requests,
        "wall_seconds": round(elapsed, 2),
        "peak_rss_mb": round(rss_mb, 1),
        "devices_per_sec": round(install_events / elapsed, 1),
    }


def measure_point(scale: float, batch_devices: int) -> dict:
    """Run one point in a fresh subprocess for an isolated RSS peak."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--point", repr(scale), "--point-batch", str(batch_devices)],
        capture_output=True, text=True, env=env, check=False)
    if completed.returncode != 0:
        raise RuntimeError(
            f"scale point {scale} (batch {batch_devices}) failed:\n"
            f"{completed.stderr}")
    return json.loads(completed.stdout)


def _label(scale: float) -> str:
    return f"{scale:g}"


def build_report() -> dict:
    """The full trajectory; ``deterministic`` is the committed subset.

    The deterministic per-point counts are recorded once: the streamed
    and the materialised run of each point must produce the same
    numbers (the bench asserts it), so pinning one copy pins both.
    """
    streamed = {}
    materialised = {}
    for scale in POINTS:
        streamed[_label(scale)] = measure_point(scale, BATCH)
        materialised[_label(scale)] = measure_point(scale, 0)
    deterministic = {
        "run": {
            "seed": SEED,
            "days": DAYS,
            "batch_devices": BATCH,
            "points": [_label(scale) for scale in POINTS],
        },
        "points": {
            label: {
                "offers": point["offers"],
                "advertised_packages": point["advertised_packages"],
                "install_events": point["install_events"],
                "milk_runs": point["milk_runs"],
                "crawl_requests": point["crawl_requests"],
            }
            for label, point in streamed.items()
        },
    }
    report = dict(deterministic)
    report["streamed_equals_materialised"] = all(
        deterministic["points"][label] == {
            key: materialised[label][key]
            for key in deterministic["points"][label]}
        for label in deterministic["points"])
    report["peak_rss_mb"] = {
        "streamed": {label: point["peak_rss_mb"]
                     for label, point in streamed.items()},
        "materialised": {label: point["peak_rss_mb"]
                         for label, point in materialised.items()},
    }
    report["wall_seconds"] = {
        "streamed": {label: point["wall_seconds"]
                     for label, point in streamed.items()},
        "materialised": {label: point["wall_seconds"]
                         for label, point in materialised.items()},
    }
    report["devices_per_sec"] = {
        "streamed": {label: point["devices_per_sec"]
                     for label, point in streamed.items()},
        "materialised": {label: point["devices_per_sec"]
                         for label, point in materialised.items()},
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--point", type=float, default=None,
                        help="internal: run one scale point in this "
                             "process and print its JSON to stdout")
    parser.add_argument("--point-batch", type=int, default=0,
                        help="internal: --batch-devices for --point")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="full scale report (with RSS/wall times)")
    parser.add_argument("--snapshot-out", type=Path,
                        default=DEFAULT_SNAPSHOT,
                        help="deterministic subset, committed")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the committed snapshot "
                             "does not match a fresh run")
    args = parser.parse_args()
    if args.point is not None:
        print(json.dumps(run_point(args.point, args.point_batch)))
        return 0
    report = build_report()
    if not report["streamed_equals_materialised"]:
        print("scale bench: streamed and materialised runs disagree on "
              "deterministic counts", file=sys.stderr)
        return 1
    return emit_report("scale", report, args.out, args.snapshot_out,
                       args.check, "export_scale_obs.py")


if __name__ == "__main__":
    raise SystemExit(main())
