"""Shared plumbing for the ``export_*_obs.py`` snapshot exporters.

Every exporter pins a deterministic JSON snapshot under
``benchmarks/snapshots/`` and (for the perf benches) a full report with
wall times next to the repo root.  The rendering, the committed-vs-fresh
``--check`` comparison, and the per-stage quantile tables used to be
copy-pasted per script; they live here now so a formatting or drift-
message change lands everywhere at once.

Not importable as ``repro.*`` on purpose: the exporters run from the
repo root as plain scripts (``python scripts/export_x_obs.py``) and the
benchmarks add ``scripts/`` to ``sys.path`` — both paths resolve this
module the same way.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Legacy per-stage quantile keys mapped onto
#: :meth:`repro.obs.metrics.HistogramState.summary` fields.  The names
#: are load-bearing: the committed wild/honey snapshots and the bench
#: gates read them, so the mapping must not change without regenerating
#: every snapshot.
STAGE_KEYS = (
    ("count", "count"),
    ("mean_ops", "mean"),
    ("p50_ops", "p50"),
    ("p90_ops", "p90"),
    ("p99_ops", "p99"),
    ("max_ops", "max"),
)


def render(snapshot: dict) -> str:
    """The one true snapshot encoding: sorted keys, indent 1, final
    newline.  Byte-identical output is the whole point — CI diffs the
    rendered text, not parsed JSON."""
    return json.dumps(snapshot, indent=1, sort_keys=True) + "\n"


#: Report sections that depend on the host — wall clock, RSS, derived
#: throughput, microbench rates — and so never belong in a committed
#: snapshot.
HOST_DEPENDENT_SECTIONS = frozenset(
    {"wall_seconds", "devices_per_sec", "peak_rss_mb", "scheduler"})


def deterministic_subset(report: dict) -> dict:
    """Strip the host-dependent sections; everything left must be a
    pure function of the run's seeds and parameters."""
    return {key: value for key, value in report.items()
            if key not in HOST_DEPENDENT_SECTIONS}


def stage_quantiles(world, names) -> dict:
    """Per-stage op-cost table keyed by histogram name.

    Renames :meth:`HistogramState.summary` fields to the legacy
    ``*_ops`` keys the committed snapshots pin (see ``STAGE_KEYS``).
    A stage that never recorded reports only ``{"count": 0}``.
    """
    table = {}
    for name in names:
        state = world.obs.metrics.histogram(name)
        if state is None:
            table[name] = {"count": 0}
            continue
        summary = state.summary()
        table[name] = {legacy: summary[field]
                       for legacy, field in STAGE_KEYS}
    return table


def emit_snapshot(label: str, rendered: str, out: Path, check: bool,
                  script: str) -> int:
    """Write (or, with ``check``, verify) one committed snapshot.

    ``script`` names the exporter in the drift message so CI logs say
    exactly which command regenerates the baseline.
    """
    if check:
        committed = out.read_text() if out.exists() else ""
        if committed != rendered:
            print(f"{label} snapshot drift: {out} does not match this "
                  f"revision (re-run scripts/{script})")
            return 1
        print(f"{label} snapshot up to date: {out}")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(rendered)
    print(f"wrote {out}")
    return 0


def emit_report(label: str, report: dict, out: Path, snapshot_out: Path,
                check: bool, script: str) -> int:
    """Pin the deterministic subset of ``report`` as a snapshot, then
    write the full report (wall times included) to ``out``.

    On check-mode drift the full report is *not* written: a failing CI
    run should leave no half-updated artifacts behind.
    """
    status = emit_snapshot(label, render(deterministic_subset(report)),
                           snapshot_out, check, script)
    if status:
        return status
    out.write_text(render(report))
    print(f"wrote {out}")
    return status
