"""Export the wild-measurement perf bench: ``BENCH_wild.json``.

Runs the Section-4 pipeline twice at the bench scale — once as shipped
(request cache on) and once with the crawler's (package, day) cache
disabled, the pre-cache baseline — and reports what the cache bought:
total fabric requests, the reduction fraction, cache hit rate, and the
per-stage op-cost histogram quantiles (``wild.milk_ops`` /
``wild.crawl_ops`` / ``wild.analyse_ops``).

Two outputs:

* ``BENCH_wild.json`` (``--out``): the full report, including wall
  times — informative, not deterministic, uploaded as a CI artifact.
* ``benchmarks/snapshots/wild_obs.json`` (``--snapshot-out``): the
  deterministic subset (no wall times), committed to the repo.
  ``--check`` fails if a fresh run drifts from it, which gates the
  fabric request count against silent regressions.

Run from the repo root::

    PYTHONPATH=src python scripts/export_bench_obs.py

Scale/seed come from the same ``REPRO_BENCH_*`` variables the
benchmarks use; the committed snapshot records them, so a check run
under different values reports parameter drift rather than corruption.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import (
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)

SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "110"))
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))

STAGE_HISTOGRAMS = ("wild.milk_ops", "wild.crawl_ops", "wild.analyse_ops")

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_wild.json"
DEFAULT_SNAPSHOT = REPO_ROOT / "benchmarks/snapshots/wild_obs.json"


def run_wild(crawl_cache: bool) -> tuple:
    world = World(seed=SEED)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=SHARDS, crawl_cache=crawl_cache))
    started = time.monotonic()
    results = measurement.run()
    elapsed = time.monotonic() - started
    return world, results, elapsed


def stage_quantiles(world) -> dict:
    table = {}
    for name in STAGE_HISTOGRAMS:
        state = world.obs.metrics.histogram(name)
        if state is None:
            table[name] = {"count": 0}
            continue
        table[name] = {
            "count": state.count,
            "mean_ops": round(state.mean, 1),
            "p50_ops": state.quantile(0.50),
            "p90_ops": state.quantile(0.90),
            "p99_ops": state.quantile(0.99),
            "max_ops": state.maximum,
        }
    return table


def build_report() -> dict:
    """The full bench report; ``deterministic`` holds the committed
    subset (everything except wall-clock timings)."""
    world, results, elapsed = run_wild(crawl_cache=True)
    base_world, base_results, base_elapsed = run_wild(crawl_cache=False)
    total = world.obs.metrics.counter_total
    base_total = base_world.obs.metrics.counter_total

    requests = int(total("net.fabric.connections"))
    base_requests = int(base_total("net.fabric.connections"))
    hits = int(total("crawler.cache_hits"))
    misses = int(total("crawler.cache_misses"))
    lookups = hits + misses
    deterministic = {
        "run": {
            "seed": SEED,
            "scale": SCALE,
            "days": DAYS,
            "shards": SHARDS,
        },
        "fabric": {
            "requests": requests,
            "requests_uncached": base_requests,
            "reduction": round(1.0 - requests / base_requests, 4),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        },
        "crawl": {
            "requests": results.crawl_requests,
            "requests_uncached": base_results.crawl_requests,
        },
        "dataset": {
            "offers": results.dataset.offer_count(),
            "advertised_packages": len(results.dataset.unique_packages()),
            "milk_runs": results.milk_runs,
        },
        "op_cost": stage_quantiles(world),
    }
    report = dict(deterministic)
    report["wall_seconds"] = {
        "measured": round(elapsed, 2),
        "baseline_uncached": round(base_elapsed, 2),
    }
    return report


def deterministic_subset(report: dict) -> dict:
    return {key: value for key, value in report.items()
            if key != "wall_seconds"}


def render(snapshot: dict) -> str:
    return json.dumps(snapshot, indent=1, sort_keys=True) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="full bench report (with wall times)")
    parser.add_argument("--snapshot-out", type=Path, default=DEFAULT_SNAPSHOT,
                        help="deterministic subset, committed to the repo")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the committed snapshot "
                             "does not match a fresh run")
    args = parser.parse_args()
    report = build_report()
    rendered_snapshot = render(deterministic_subset(report))
    if args.check:
        committed = (args.snapshot_out.read_text()
                     if args.snapshot_out.exists() else "")
        if committed != rendered_snapshot:
            print(f"wild perf snapshot drift: {args.snapshot_out} does not "
                  "match this revision "
                  "(re-run scripts/export_bench_obs.py)")
            return 1
        print(f"wild perf snapshot up to date: {args.snapshot_out}")
        args.out.write_text(render(report))
        print(f"wrote {args.out}")
        return 0
    args.snapshot_out.parent.mkdir(parents=True, exist_ok=True)
    args.snapshot_out.write_text(rendered_snapshot)
    args.out.write_text(render(report))
    print(f"wrote {args.snapshot_out}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
