"""Export the perf benches: ``BENCH_wild.json`` and ``BENCH_honey.json``.

Wild (Section 4): runs the pipeline twice at the bench scale — once as
shipped (request cache on) and once with the crawler's (package, day)
cache disabled, the pre-cache baseline — and reports what the cache
bought: total fabric requests, the reduction fraction, cache hit rate,
and the per-stage op-cost histogram quantiles (``wild.milk_ops`` /
``wild.crawl_ops`` / ``wild.analyse_ops``).

Honey (Section 3): runs the honey-app experiment twice — once with TLS
session resumption on (shipped) and once with it off, the
full-handshake baseline — and reports what resumption bought: fabric
round trips, the reduction fraction, handshake vs resumption counts,
and the ``honey.campaign_ops`` / ``honey.analysis_ops`` quantiles.

Four outputs:

* ``BENCH_wild.json`` / ``BENCH_honey.json`` (``--out`` /
  ``--honey-out``): the full reports, including wall times —
  informative, not deterministic, uploaded as CI artifacts.
* ``benchmarks/snapshots/wild_obs.json`` /
  ``benchmarks/snapshots/honey_obs.json`` (``--snapshot-out`` /
  ``--honey-snapshot-out``): the deterministic subsets (no wall
  times), committed to the repo.  ``--check`` fails if a fresh run
  drifts from either, which gates the request counts against silent
  regressions.

Run from the repo root::

    PYTHONPATH=src python scripts/export_bench_obs.py

Scale/seed come from the same ``REPRO_BENCH_*`` variables the
benchmarks use; the committed snapshots record them, so a check run
under different values reports parameter drift rather than corruption.
"""

from __future__ import annotations

import argparse
import os
import resource
import time
import timeit
from pathlib import Path

from obs_export import (
    deterministic_subset,
    emit_report,
    render,
    stage_quantiles as _stage_quantiles,
)
from repro import (
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)
from repro.core import HoneyAppExperiment

SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "110"))
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))
BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "thread")
HONEY_INSTALLS = int(os.environ.get("REPRO_BENCH_HONEY_INSTALLS", "500"))
HONEY_SHARDS = int(os.environ.get("REPRO_BENCH_HONEY_SHARDS", "1"))

STAGE_HISTOGRAMS = ("wild.milk_ops", "wild.crawl_ops", "wild.analyse_ops")
HONEY_STAGE_HISTOGRAMS = ("honey.campaign_ops", "honey.analysis_ops")

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_wild.json"
DEFAULT_SNAPSHOT = REPO_ROOT / "benchmarks/snapshots/wild_obs.json"
DEFAULT_HONEY_OUT = REPO_ROOT / "BENCH_honey.json"
DEFAULT_HONEY_SNAPSHOT = REPO_ROOT / "benchmarks/snapshots/honey_obs.json"


def run_wild(crawl_cache: bool) -> tuple:
    world = World(seed=SEED)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=SHARDS, backend=BACKEND,
        crawl_cache=crawl_cache))
    started = time.monotonic()
    results = measurement.run()
    elapsed = time.monotonic() - started
    return world, results, elapsed


def run_honey(tls_resumption: bool) -> tuple:
    world = World(seed=SEED)
    experiment = HoneyAppExperiment(world, installs_per_iip=HONEY_INSTALLS,
                                    shards=HONEY_SHARDS,
                                    tls_resumption=tls_resumption)
    started = time.monotonic()
    results = experiment.run()
    elapsed = time.monotonic() - started
    return world, results, elapsed


def stage_quantiles(world, names=STAGE_HISTOGRAMS) -> dict:
    return _stage_quantiles(world, names)


def peak_rss_mb() -> dict:
    """Peak resident set size so far, in MB.  ``children`` covers
    reaped process-backend workers (zero on in-process backends)."""
    kb = 1024.0
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / kb
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / kb
    return {
        "self": round(own, 1),
        "children": round(children, 1),
        "total": round(own + children, 1),
    }


def scheduler_microbench() -> dict:
    """Time the scheduler's routing hash: ``shard_of`` is memoised
    per-run, so steady-state task routing is a dict hit, not a sha256."""
    from repro.parallel import ShardScheduler

    scheduler = ShardScheduler(4)
    keys = [f"com.example.app{i}" for i in range(64)]
    calls = 100_000
    elapsed = timeit.timeit(
        lambda: [scheduler.shard_of(key) for key in keys], number=calls // 64)
    return {
        "memoised_calls_per_sec": int(calls / elapsed),
        "note": "shard_of memoises the sha256-derived bucket per key for "
                "the scheduler's lifetime; routing the same package on "
                "every crawl day costs a dict lookup after day one",
    }


def build_report() -> dict:
    """The full bench report; ``deterministic`` holds the committed
    subset (everything except wall-clock timings)."""
    world, results, elapsed = run_wild(crawl_cache=True)
    base_world, base_results, base_elapsed = run_wild(crawl_cache=False)
    total = world.obs.metrics.counter_total
    base_total = base_world.obs.metrics.counter_total

    requests = int(total("net.fabric.connections"))
    base_requests = int(base_total("net.fabric.connections"))
    hits = int(total("crawler.cache_hits"))
    misses = int(total("crawler.cache_misses"))
    lookups = hits + misses
    deterministic = {
        "run": {
            "seed": SEED,
            "scale": SCALE,
            "days": DAYS,
            "shards": SHARDS,
            "backend": BACKEND,
        },
        "fabric": {
            "requests": requests,
            "requests_uncached": base_requests,
            "reduction": round(1.0 - requests / base_requests, 4),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        },
        "crawl": {
            "requests": results.crawl_requests,
            "requests_uncached": base_results.crawl_requests,
        },
        "dataset": {
            "offers": results.dataset.offer_count(),
            "advertised_packages": len(results.dataset.unique_packages()),
            "milk_runs": results.milk_runs,
        },
        "op_cost": stage_quantiles(world),
    }
    report = dict(deterministic)
    report["wall_seconds"] = {
        "measured": round(elapsed, 2),
        "baseline_uncached": round(base_elapsed, 2),
    }
    report["devices_per_sec"] = {
        "measured": round(results.milk_runs / elapsed, 2),
        "baseline_uncached": round(base_results.milk_runs / base_elapsed, 2),
    }
    report["peak_rss_mb"] = peak_rss_mb()
    report["scheduler"] = scheduler_microbench()
    return report


def build_honey_report() -> dict:
    """The honey bench report: resumption on (shipped) vs off."""
    world, results, elapsed = run_honey(tls_resumption=True)
    base_world, base_results, base_elapsed = run_honey(tls_resumption=False)
    total = world.obs.metrics.counter_total
    base_total = base_world.obs.metrics.counter_total

    # Every fabric round trip is one client frame plus one response.
    round_trips = int(total("net.fabric.frames")) // 2
    base_round_trips = int(base_total("net.fabric.frames")) // 2
    handshakes = int(total("net.client.tls_handshakes"))
    resumptions = int(total("net.client.tls_resumptions"))
    deterministic = {
        "run": {
            "seed": SEED,
            "installs_per_iip": HONEY_INSTALLS,
            "shards": HONEY_SHARDS,
        },
        "fabric": {
            "round_trips": round_trips,
            "round_trips_no_resumption": base_round_trips,
            "reduction": round(1.0 - round_trips / base_round_trips, 4),
        },
        "tls": {
            "handshakes": handshakes,
            "resumptions": resumptions,
            "resume_failures": int(total("net.client.tls_resume_failures")),
            "handshakes_no_resumption":
                int(base_total("net.client.tls_handshakes")),
        },
        "experiment": {
            "total_installs": results.total_installs(),
            "displayed_installs_after": results.displayed_installs_after,
            "enforcement_actions": results.enforcement_actions,
            "total_installs_no_resumption": base_results.total_installs(),
        },
        "op_cost": stage_quantiles(world, HONEY_STAGE_HISTOGRAMS),
    }
    report = dict(deterministic)
    report["wall_seconds"] = {
        "measured": round(elapsed, 2),
        "baseline_no_resumption": round(base_elapsed, 2),
    }
    report["devices_per_sec"] = {
        "measured": round(results.total_installs() / elapsed, 2),
        "baseline_no_resumption":
            round(base_results.total_installs() / base_elapsed, 2),
    }
    report["peak_rss_mb"] = peak_rss_mb()
    return report


def _emit(label: str, report: dict, out: Path, snapshot_out: Path,
          check: bool) -> int:
    return emit_report(f"{label} perf", report, out, snapshot_out, check,
                       "export_bench_obs.py")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="full wild bench report (with wall times)")
    parser.add_argument("--snapshot-out", type=Path, default=DEFAULT_SNAPSHOT,
                        help="deterministic wild subset, committed")
    parser.add_argument("--honey-out", type=Path, default=DEFAULT_HONEY_OUT,
                        help="full honey bench report (with wall times)")
    parser.add_argument("--honey-snapshot-out", type=Path,
                        default=DEFAULT_HONEY_SNAPSHOT,
                        help="deterministic honey subset, committed")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if a committed snapshot "
                             "does not match a fresh run")
    parser.add_argument("--only", choices=("wild", "honey"),
                        help="export just one bench")
    args = parser.parse_args()
    status = 0
    if args.only in (None, "wild"):
        status |= _emit("wild", build_report(), args.out,
                        args.snapshot_out, args.check)
    if args.only in (None, "honey"):
        status |= _emit("honey", build_honey_report(), args.honey_out,
                        args.honey_snapshot_out, args.check)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
