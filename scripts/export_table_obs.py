"""Export the per-table bench snapshot: ``benchmarks/snapshots/table_obs.json``.

Builds one wild bundle at the bench parameters and renders every paper
table the per-table benches (``test_bench_table*.py``) render, pinning
for each a content hash, its line count, and the headline row counts.
The snapshot is committed, so diffing it across revisions shows exactly
which table a change moved — without having to eyeball eight rendered
tables in CI logs.

Run from the repo root::

    PYTHONPATH=src python scripts/export_table_obs.py

Scale/seed come from the same ``REPRO_BENCH_*`` variables the
benchmarks use; the committed snapshot records them, so a check run
under different values reports parameter drift rather than corruption.
"""

from __future__ import annotations

import argparse
import hashlib
import os
from collections import defaultdict
from pathlib import Path

from obs_export import emit_snapshot, render
from repro import (
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)
from repro.analysis.appstore_impact import (
    install_increase_comparison,
    top_chart_comparison,
)
from repro.analysis.characterize import iip_summary_table, offer_type_table
from repro.analysis.funding import (
    funded_offer_breakdown,
    funded_packages,
    funding_comparison,
)
from repro.core import reports
from repro.iip.registry import VETTED_IIPS

SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "110"))
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))

DEFAULT_OUT = Path(__file__).resolve().parent.parent / (
    "benchmarks/snapshots/table_obs.json")


def build_bundle() -> tuple:
    world = World(seed=SEED)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=SCALE, measurement_days=DAYS))
    scenario.build()
    results = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=DAYS, shards=SHARDS)).run()
    vetted = results.vetted_packages()
    vetted_set = set(vetted)
    unvetted = [p for p in results.unvetted_packages()
                if p not in vetted_set]
    return results, vetted, unvetted


def render_tables(results, vetted, unvetted) -> dict:
    """table name -> rendered text, exactly as the benches render them."""
    walls = defaultdict(set)
    for observation in results.observations:
        walls[observation.affiliate_package].add(observation.iip_name)
    funded = funded_packages(results.archive, results.dataset,
                             results.snapshot, vetted)
    return {
        "table1": reports.render_table1(),
        "table2": reports.render_table2(walls),
        "table3": reports.render_table3(
            offer_type_table(results.dataset)),
        "table4": reports.render_table4(iip_summary_table(
            results.dataset, results.archive, VETTED_IIPS)),
        "table5": reports.render_table5(install_increase_comparison(
            results.archive, results.dataset, vetted, unvetted,
            results.baseline_packages, results.baseline_window)),
        "table6": reports.render_table6(top_chart_comparison(
            results.archive, results.dataset, vetted, unvetted,
            results.baseline_packages, results.baseline_window)),
        "table7": reports.render_table7(funding_comparison(
            results.archive, results.dataset, results.snapshot,
            vetted, unvetted, results.baseline_packages,
            results.baseline_window[0])),
        "table8": reports.render_table8(funded_offer_breakdown(
            results.dataset, funded)),
    }


def build_snapshot() -> dict:
    results, vetted, unvetted = build_bundle()
    tables = {
        name: {
            "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
            "lines": text.count("\n") + 1,
        }
        for name, text in sorted(render_tables(results, vetted,
                                               unvetted).items())
    }
    return {
        "run": {
            "seed": SEED,
            "scale": SCALE,
            "days": DAYS,
            "shards": SHARDS,
        },
        "inputs": {
            "offers": results.dataset.offer_count(),
            "vetted_packages": len(vetted),
            "unvetted_packages": len(unvetted),
        },
        "tables": tables,
    }


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the committed snapshot "
                             "does not match a fresh run")
    args = parser.parse_args()
    return emit_snapshot("table", render(build_snapshot()), args.out,
                         args.check, "export_table_obs.py")


if __name__ == "__main__":
    raise SystemExit(main())
