"""Honey-pipeline perf bench: what TLS session resumption buys, pinned.

``scripts/export_bench_obs.py`` runs the Section-3 experiment with TLS
session resumption on and off at the bench scale; this bench asserts
the headline claims (fabric round trips down >= 30%, resumptions
actually happening, op-cost histograms populated, results unchanged by
the transport) and pins the deterministic subset against the committed
``benchmarks/snapshots/honey_obs.json`` so a round-trip regression
cannot land silently.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "honey_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_bench_obs import (  # noqa: E402
    build_honey_report,
    deterministic_subset,
    render,
)


@pytest.fixture(scope="module")
def report():
    return build_honey_report()


class TestHoneyPerf:
    def test_resumption_cuts_round_trips_by_a_third(self, report):
        fabric = report["fabric"]
        assert fabric["round_trips"] < fabric["round_trips_no_resumption"]
        assert fabric["reduction"] >= 0.30

    def test_sessions_actually_resume(self, report):
        tls = report["tls"]
        assert tls["resumptions"] > 0
        assert tls["handshakes"] > 0
        assert tls["handshakes"] < tls["handshakes_no_resumption"]
        # At bench scale the clean fabric never breaks a session.
        assert tls["resume_failures"] == 0

    def test_transport_does_not_change_results(self, report):
        experiment = report["experiment"]
        assert (experiment["total_installs"]
                == experiment["total_installs_no_resumption"])

    def test_op_cost_histograms_cover_every_stage(self, report):
        op_cost = report["op_cost"]
        assert op_cost["honey.campaign_ops"]["count"] == 3
        assert op_cost["honey.analysis_ops"]["count"] == 1
        assert (op_cost["honey.campaign_ops"]["p99_ops"]
                >= op_cost["honey.campaign_ops"]["p50_ops"])

    def test_throughput_is_reported_and_real(self, report):
        """BENCH_honey.json carries the same host-dependent sections
        BENCH_wild.json does: install throughput and peak RSS."""
        throughput = report["devices_per_sec"]
        assert throughput["measured"] > 0
        assert throughput["baseline_no_resumption"] > 0

    def test_peak_rss_is_tracked_and_bounded(self, report):
        rss = report["peak_rss_mb"]
        assert rss["self"] > 0
        assert rss["total"] == pytest.approx(
            rss["self"] + rss["children"], abs=0.1)
        # The honey bench runs in-process; it fits comfortably in 2 GB.
        assert rss["total"] < 2048

    def test_matches_committed_snapshot(self, report):
        assert SNAPSHOT.exists(), (
            "run PYTHONPATH=src python scripts/export_bench_obs.py")
        committed = json.loads(SNAPSHOT.read_text())
        fresh = json.loads(render(deterministic_subset(report)))
        assert fresh["run"] == committed["run"], (
            "bench parameters differ from the committed snapshot; "
            "re-run with matching REPRO_BENCH_* values")
        assert fresh == committed
