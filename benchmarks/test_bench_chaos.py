"""Chaos resilience bench: the measurement's coverage under the
``paper`` fault profile, pinned against the committed snapshot.

``benchmarks/snapshots/chaos_obs.json`` (written by
``scripts/export_chaos_obs.py``) is the baseline; a diff means a code
change moved the resilience behaviour and the snapshot needs
regenerating -- deliberately, in the same commit.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "chaos_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_chaos_obs import build_snapshot, render  # noqa: E402


@pytest.fixture(scope="module")
def fresh_snapshot():
    return build_snapshot()


def test_chaos_run_shape(fresh_snapshot):
    loss = fresh_snapshot["coverage_loss"]
    # The pipeline survived a paper-plausible fault schedule...
    assert loss["faults_injected"] > 0
    assert loss["retries"] > 0
    assert loss["faults_survived"] > 0
    # ...and lost only a bounded slice of coverage.
    assert loss["gave_up"] <= loss["retries"]
    assert loss["walls_lost"] < 100


def test_chaos_counters_match_committed_snapshot(fresh_snapshot):
    assert SNAPSHOT.exists(), (
        "run PYTHONPATH=src python scripts/export_chaos_obs.py")
    committed = json.loads(SNAPSHOT.read_text())
    fresh = json.loads(render(fresh_snapshot))
    assert fresh["run"] == committed["run"]
    assert fresh["coverage_loss"] == committed["coverage_loss"]
    assert fresh["counters"] == committed["counters"]
