"""Table 3: offer-type prevalence and average payouts.

Paper: 47% no-activity at $0.06 average vs 53% activity at $0.52
(usage 37%/$0.50, registration 11%/$0.34, purchase 5%/$2.98) -- i.e.
activity offers are ~9x more expensive, and purchase offers are the
most expensive subcategory by a wide margin.
"""

from repro.analysis.characterize import offer_type_table
from repro.core.reports import render_table3


def test_table3(benchmark, wild):
    rows = benchmark(offer_type_table, wild.results.dataset)
    print("\n" + render_table3(rows))
    by_label = {row.label: row for row in rows}
    no_activity = by_label["No activity"]
    activity = by_label["Activity"]
    # Split close to 47/53.
    assert 0.35 < no_activity.fraction_of_all < 0.60
    assert 0.40 < activity.fraction_of_all < 0.65
    # Activity offers pay several times more than no-activity offers.
    assert activity.average_payout_usd > 4 * no_activity.average_payout_usd
    # Subcategory ordering: purchase >> usage > registration-ish.
    purchase = by_label["Activity (Purchase)"]
    usage = by_label["Activity (Usage)"]
    registration = by_label["Activity (Registration)"]
    assert purchase.average_payout_usd > 3 * usage.average_payout_usd
    assert purchase.average_payout_usd > 3 * registration.average_payout_usd
    # Usage dominates the activity subcategories; purchase is rare.
    assert usage.offer_count > registration.offer_count > 0
    assert purchase.fraction_of_all < 0.12
