"""Ablations of the design choices DESIGN.md calls out.

1. **Binned install counts** -- Table 5's effect size is shaped by
   Google's lower-bound binning; on raw counts nearly every campaign is
   visible, on binned counts only bin-crossing ones are.
2. **Crawl cadence** -- sparser crawls lose chart appearances (charts
   are sampled point events) but barely change install-increase
   detection (cumulative counts are monotone).
3. **Multi-country milking** -- geo-targeted offers are only visible
   from targeted countries, so coverage grows with VPN exit countries.
4. **Activity vs no-activity offers** -- the engagement mechanism:
   among vetted apps, chart entry concentrates in activity-offer apps.
"""

from collections import defaultdict

from repro.analysis.appstore_impact import (
    install_increase_comparison,
    top_chart_comparison,
)
from repro.analysis.monetization import split_packages_by_offer_type


class TestBinningAblation:
    def _raw_increase_fraction(self, wild, packages):
        """Ground-truth (unbinned) install growth over campaign windows."""
        ledger = wild.world.store.ledger
        dataset = wild.results.dataset
        increased = 0
        total = 0
        for package in packages:
            start, end = dataset.campaign_window(package)
            total += 1
            if ledger.total_installs(package, end) > ledger.total_installs(
                    package, max(0, start - 1)):
                increased += 1
        return increased / total if total else 0.0

    def test_binning_hides_most_campaign_growth(self, benchmark, wild):
        results = wild.results
        binned = benchmark(
            install_increase_comparison,
            results.archive, results.dataset, wild.vetted, wild.unvetted,
            results.baseline_packages, results.baseline_window)
        raw_vetted = self._raw_increase_fraction(wild, wild.vetted)
        print(f"\nvetted apps with install growth: raw counts "
              f"{raw_vetted:.0%} vs binned observable "
              f"{binned.vetted.fraction:.0%}")
        # Every campaign adds installs, so raw growth is near-universal;
        # the store's binning is what makes Table 5 an interesting signal.
        assert raw_vetted > 0.9
        assert binned.vetted.fraction < 0.5 * raw_vetted


class TestCrawlCadenceAblation:
    def test_sparser_crawls_lose_chart_appearances(self, benchmark, wild):
        results = wild.results
        full_days = results.archive.crawl_days

        def chart_positives(archive):
            comparison = top_chart_comparison(
                archive, results.dataset, wild.vetted, wild.unvetted,
                results.baseline_packages, results.baseline_window)
            return comparison.vetted.positive

        sparse = results.archive.filtered(full_days[::4])  # every 8 days
        full_hits = benchmark(chart_positives, results.archive)
        sparse_hits = chart_positives(sparse)
        print(f"\nvetted chart appearances: cadence-2 {full_hits} "
              f"vs cadence-8 {sparse_hits}")
        assert sparse_hits <= full_hits

    def test_sparser_crawls_keep_install_increases(self, benchmark, wild):
        results = wild.results
        full_days = results.archive.crawl_days
        sparse = results.archive.filtered(full_days[::3])

        def increases(archive):
            return install_increase_comparison(
                archive, results.dataset, wild.vetted, wild.unvetted,
                results.baseline_packages,
                results.baseline_window).vetted.fraction

        full_fraction = increases(results.archive)
        sparse_fraction = benchmark(increases, sparse)
        print(f"\nvetted increase fraction: cadence-2 {full_fraction:.1%} "
              f"vs cadence-6 {sparse_fraction:.1%}")
        # Cumulative counts are monotone: the signal survives sparsity.
        assert sparse_fraction > 0.5 * full_fraction


class TestCountryCoverageAblation:
    def test_more_exit_countries_more_coverage(self, benchmark, wild):
        observations = wild.results.observations
        countries = sorted({o.country for o in observations if o.country})

        def coverage(k):
            allowed = set(countries[:k])
            return len({o.package for o in observations
                        if o.country in allowed})

        series = benchmark(lambda: [coverage(k)
                                    for k in range(1, len(countries) + 1)])
        print(f"\napps observed by #exit countries: {series}")
        assert series == sorted(series)  # monotone coverage growth
        assert series[-1] > series[0]    # geo-targeting is real


class TestOfferTypeLiftAblation:
    def test_chart_entries_concentrate_in_activity_apps(self, benchmark, wild):
        results = wild.results
        split = split_packages_by_offer_type(results.dataset)
        vetted = set(wild.vetted)
        activity = [p for p in split["Activity offers"] if p in vetted]
        no_activity = [p for p in split["No activity offers"] if p in vetted]

        def rate(packages):
            comparison = top_chart_comparison(
                results.archive, results.dataset, packages, [],
                results.baseline_packages, results.baseline_window)
            return comparison.vetted.fraction

        activity_rate = benchmark(rate, activity)
        no_activity_rate = rate(no_activity) if no_activity else 0.0
        print(f"\nchart-entry rate among vetted apps: activity offers "
              f"{activity_rate:.1%} vs no-activity only "
              f"{no_activity_rate:.1%}")
        # Engagement manipulation needs activity offers.
        assert activity_rate >= no_activity_rate


class TestChartFeedbackAblation:
    """Why manipulate charts at all: visibility converts into organic
    installs.  Two identical small worlds, one with the store's
    visibility->installs feedback enabled, compared on the organic
    installs advertised apps accumulate."""

    def _organic_totals(self, feedback):
        from repro import World, WildScenario, WildScenarioConfig
        from repro.playstore.ledger import InstallSource
        world = World(seed=31)
        scenario = WildScenario(world, WildScenarioConfig(
            scale=0.1, measurement_days=30,
            chart_feedback_installs=feedback))
        scenario.build()
        for day in range(30):
            scenario.run_day(day)
        organic = 0
        for app in scenario.advertised:
            by_source = world.store.ledger.installs_by_source(app.package)
            organic += by_source[InstallSource.ORGANIC] - app.initial_installs
        return organic

    def test_chart_visibility_amplifies_organic_growth(self, benchmark):
        with_feedback = benchmark.pedantic(
            self._organic_totals, args=(50.0,), rounds=1, iterations=1)
        without = self._organic_totals(0.0)
        print(f"\nadvertised apps' organic installs over 30 days: "
              f"{without} without feedback vs {with_feedback} with")
        assert with_feedback > without * 1.05
