"""Shared benchmark fixtures.

The expensive part -- building the world and running the three-month
measurement -- happens once per session; each bench then times its
analysis stage and asserts the paper's shape (who wins, rough factors).

Scale defaults to 0.35 of the paper's population for wall-clock sanity;
set REPRO_BENCH_SCALE=1.0 for the full 922-app reproduction.
"""

import os

import pytest

from repro import (
    HoneyAppExperiment,
    WildMeasurement,
    WildMeasurementConfig,
    WildScenario,
    WildScenarioConfig,
    World,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "110"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))
BENCH_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))


class WildBundle:
    """World + scenario + measured results, built once."""

    def __init__(self):
        self.world = World(seed=BENCH_SEED)
        self.scenario = WildScenario(self.world, WildScenarioConfig(
            scale=BENCH_SCALE, measurement_days=BENCH_DAYS))
        self.scenario.build()
        measurement = WildMeasurement(
            self.world, self.scenario,
            WildMeasurementConfig(measurement_days=BENCH_DAYS,
                                  shards=BENCH_SHARDS))
        self.results = measurement.run()
        self.vetted = self.results.vetted_packages()
        vetted_set = set(self.vetted)
        self.unvetted = [p for p in self.results.unvetted_packages()
                         if p not in vetted_set]


@pytest.fixture(scope="session")
def wild():
    return WildBundle()


@pytest.fixture(scope="session")
def honey():
    world = World(seed=BENCH_SEED)
    experiment = HoneyAppExperiment(world)
    return experiment.run(), world
