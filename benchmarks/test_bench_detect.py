"""Detection bench: live-source quality floors, pinned.

``scripts/export_detect_obs.py`` streams both measurement pipelines —
Section-3 honey telemetry and the Section-4 wild monitor — through the
online lockstep detector at the bench scale; this bench asserts the
headline claims (precision/recall floors on *live* sources, not just
the synthetic corpus; online == batch on both) and pins the
deterministic subset against the committed
``benchmarks/snapshots/detect_obs.json`` so a quality regression
cannot land silently.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "detect_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_detect_obs import (  # noqa: E402
    build_report,
    deterministic_subset,
    render,
)


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestDetectBench:
    def test_honey_ground_truth_recovered(self, report):
        quality = report["honey"]["quality"]
        # Every honey install is a purchased install; the detector sees
        # the full campaign bursts and should recover nearly all of it.
        assert quality["precision"] >= 0.99
        assert quality["recall"] >= 0.95

    def test_wild_quality_floors(self, report):
        quality = report["wild"]["quality"]
        assert quality["precision"] >= 0.90
        assert quality["recall"] >= 0.50
        assert quality["false_positive_rate"] <= 0.05

    def test_streams_carry_labelled_events(self, report):
        for source in ("honey", "wild"):
            stream = report[source]["stream"]
            assert stream["events"] > 0
            assert stream["incentivized"] > 0
            assert stream["clusters"] > 0
            assert stream["events_ingested_counter"] == stream["events"]

    def test_online_converges_to_batch_on_both_sources(self, report):
        assert report["honey"]["stream_equals_batch"]
        assert report["wild"]["stream_equals_batch"]

    def test_matches_committed_snapshot(self, report):
        assert SNAPSHOT.exists(), (
            "run PYTHONPATH=src python scripts/export_detect_obs.py")
        committed = json.loads(SNAPSHOT.read_text())
        fresh = json.loads(render(deterministic_subset(report)))
        assert fresh["run"] == committed["run"], (
            "bench parameters differ from the committed snapshot; "
            "re-run with matching REPRO_BENCH_* values")
        assert fresh == committed
