"""Detection bench: live-source quality floors, pinned.

``scripts/export_detect_obs.py`` streams both measurement pipelines —
Section-3 honey telemetry and the Section-4 wild monitor — through the
online lockstep detector at the bench scale; this bench asserts the
headline claims (precision/recall floors on *live* sources, not just
the synthetic corpus; online == batch on both) and pins the
deterministic subset against the committed
``benchmarks/snapshots/detect_obs.json`` so a quality regression
cannot land silently.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "detect_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_detect_obs import (  # noqa: E402
    build_report,
    deterministic_subset,
    render,
)


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestDetectBench:
    def test_honey_ground_truth_recovered(self, report):
        quality = report["honey"]["quality"]
        # Every honey install is a purchased install; the detector sees
        # the full campaign bursts and should recover nearly all of it.
        assert quality["precision"] >= 0.99
        assert quality["recall"] >= 0.95

    def test_wild_quality_floors(self, report):
        quality = report["wild"]["quality"]
        assert quality["precision"] >= 0.90
        assert quality["recall"] >= 0.50
        assert quality["false_positive_rate"] <= 0.05

    def test_streams_carry_labelled_events(self, report):
        for source in ("honey", "wild"):
            stream = report[source]["stream"]
            assert stream["events"] > 0
            assert stream["incentivized"] > 0
            assert stream["clusters"] > 0
            assert stream["events_ingested_counter"] == stream["events"]

    def test_online_converges_to_batch_on_both_sources(self, report):
        assert report["honey"]["stream_equals_batch"]
        assert report["wild"]["stream_equals_batch"]

    def test_evasion_degrades_naive_and_hardened_recovers(self, report):
        wild = report["scenarios"]["evasive"]["wild"]
        naive_wild = report["wild"]["quality"]
        # Evasion guts the naive fixed-window detector on the same
        # world the naive lane just cleared...
        assert wild["naive"]["recall"] <= naive_wild["recall"] / 2
        # ...and the honey-seeded hardened detector recovers the floor
        # without giving up precision.
        assert wild["hardened"]["recall"] >= 0.63
        assert wild["hardened"]["precision"] >= 0.95
        assert wild["hardened"]["false_positive_rate"] <= 0.01

    def test_hardened_recovers_on_honey_too(self, report):
        honey = report["scenarios"]["evasive"]["honey"]
        assert honey["naive"]["recall"] <= 0.5
        assert honey["hardened"]["recall"] >= 0.6
        assert honey["hardened"]["precision"] >= 0.99

    def test_fake_review_floors(self, report):
        section = report["scenarios"]["fake_reviews"]
        assert section["reviews"] > 0
        assert section["paid_reviewers"] > 0
        assert section["quality"]["precision"] >= 0.90
        assert section["quality"]["recall"] >= 0.45

    def test_download_fraud_floors(self, report):
        section = report["scenarios"]["download_fraud"]
        assert section["quality"]["precision"] >= 0.90
        assert section["quality"]["recall"] >= 0.75
        assert section["boosted_apps"], "no fraud apps were boosted"
        for app in section["boosted_apps"]:
            assert app["best_rank"] is not None
            assert app["best_rank"] <= 20

    def test_matches_committed_snapshot(self, report):
        assert SNAPSHOT.exists(), (
            "run PYTHONPATH=src python scripts/export_detect_obs.py")
        committed = json.loads(SNAPSHOT.read_text())
        fresh = json.loads(render(deterministic_subset(report)))
        assert fresh["run"] == committed["run"], (
            "bench parameters differ from the committed snapshot; "
            "re-run with matching REPRO_BENCH_* values")
        assert fresh == committed
