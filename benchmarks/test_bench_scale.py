"""Scale bench: bounded peak-RSS at 10x the bench population, pinned.

``scripts/export_scale_obs.py`` runs the wild pipeline at each scale
point twice (streamed and materialised, each in a fresh subprocess for
an isolated ``ru_maxrss``); this bench asserts the streaming claims:

* streamed and materialised runs agree on every deterministic count
  (the byte-identity invariant, at trajectory scale);
* the streamed peak RSS at the 10x point (``--scale 3.5`` vs the
  0.35 bench baseline) stays under an absolute ceiling, below the
  materialised run, and grows more slowly along the trajectory;
* a streamed crash→resume run at the 10x scale point is byte-identical
  to the uninterrupted run (report text and metrics export);
* the deterministic subset matches the committed
  ``benchmarks/snapshots/scale_obs.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "scale_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_scale_obs import (  # noqa: E402
    BATCH,
    DAYS,
    POINTS,
    SEED,
    build_report,
    deterministic_subset,
    render,
)

#: Peak-RSS ceiling for the streamed run at the top (10x) scale point.
#: Measured 204 MB at scale 3.5 / 14 days on the reference runner; the
#: gate leaves ~2x headroom for allocator and runner variance while
#: still catching a return to materialised growth (310 MB measured,
#: and any corpus re-materialisation lands far above that).
RSS_GATE_MB = 400.0
CANONICAL = POINTS == (0.35, 1.0, 3.5) and DAYS == 14

#: The crash→resume check runs fewer days than the trajectory (wall
#: time: three runs at 10x scale), but at the full 10x population.
RESUME_DAYS = 6


@pytest.fixture(scope="module")
def report():
    return build_report()


def _top(report):
    return report["run"]["points"][-1]


class TestScaleTrajectory:
    def test_streamed_equals_materialised_at_every_point(self, report):
        assert report["streamed_equals_materialised"] is True

    def test_population_really_scales_10x(self, report):
        points = report["points"]
        first = points[report["run"]["points"][0]]
        top = points[_top(report)]
        assert top["install_events"] >= 9 * first["install_events"]
        assert top["offers"] > first["offers"]
        assert top["crawl_requests"] > first["crawl_requests"]

    def test_streamed_peak_rss_holds_the_ceiling_at_10x(self, report):
        rss = report["peak_rss_mb"]
        top = _top(report)
        if CANONICAL:
            assert rss["streamed"][top] <= RSS_GATE_MB
        assert rss["streamed"][top] < rss["materialised"][top]

    def test_streamed_rss_grows_slower_than_materialised(self, report):
        """The corpus no longer lives in memory, so the RSS *slope*
        along the trajectory must be flatter streamed than
        materialised (the remaining growth is the simulated world
        itself, which both modes carry)."""
        rss = report["peak_rss_mb"]
        first, top = report["run"]["points"][0], _top(report)
        streamed_growth = rss["streamed"][top] - rss["streamed"][first]
        materialised_growth = (rss["materialised"][top]
                               - rss["materialised"][first])
        assert streamed_growth < materialised_growth

    def test_throughput_is_reported_and_real(self, report):
        for mode in ("streamed", "materialised"):
            for label in report["run"]["points"]:
                assert report["devices_per_sec"][mode][label] > 0

    def test_matches_committed_snapshot(self, report):
        assert SNAPSHOT.exists(), (
            "run PYTHONPATH=src python scripts/export_scale_obs.py")
        committed = json.loads(SNAPSHOT.read_text())
        fresh = json.loads(render(deterministic_subset(report)))
        assert fresh["run"] == committed["run"], (
            "scale bench parameters differ from the committed snapshot; "
            "re-run with matching REPRO_SCALE_* values")
        assert fresh == committed


class TestCrashResumeAtScale:
    def _wild(self, tmp_path, name, *extra, spill="spill", expect=0):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                             if existing else src)
        out = tmp_path / f"{name}.txt"
        completed = subprocess.run(
            [sys.executable, "-m", "repro",
             "--metrics-out", str(tmp_path / f"{name}.json"),
             "wild", "--seed", str(SEED),
             "--scale", f"{POINTS[-1]:g}", "--days", str(RESUME_DAYS),
             "--batch-devices", str(BATCH),
             "--spill-dir", str(tmp_path / spill),
             *extra],
            capture_output=True, text=True, env=env, check=False)
        assert completed.returncode == expect, completed.stderr
        out.write_text(completed.stdout)
        return out

    @staticmethod
    def _filtered(path):
        return [line for line in path.read_text().splitlines()
                if "metrics snapshot written" not in line]

    def test_streamed_crash_resume_is_byte_identical(self, tmp_path):
        clean = self._wild(tmp_path, "clean", spill="spill-clean")
        # The crashed and resumed runs share one spill directory: the
        # resume truncates the crashed run's spill files back to the
        # checkpointed offsets and continues appending to them.
        checkpoint = ("--checkpoint-dir", str(tmp_path / "ckpt"))
        self._wild(tmp_path, "crashed", *checkpoint,
                   "--crash-at", f"wild.day:{RESUME_DAYS // 2}",
                   expect=70)
        resumed = self._wild(tmp_path, "resumed", *checkpoint,
                             "--resume")
        assert self._filtered(resumed) == self._filtered(clean)
        assert ((tmp_path / "resumed.json").read_bytes()
                == (tmp_path / "clean.json").read_bytes())
