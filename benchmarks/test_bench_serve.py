"""Serving bench: latency percentiles, admission, and quality, pinned.

``scripts/export_serve_obs.py`` runs the always-on detection service
under the seeded query-heavy fleet twice (clean and ``paper`` chaos);
this bench asserts the headline serving claims — every endpoint carries
traffic with ordered p50 <= p95 <= p99, the watermark cache earns its
keep on a query-heavy mix, admission control sheds instead of
overflowing, and the online detector still equals the batch replay
under load and chaos — and pins the deterministic subset against the
committed ``benchmarks/snapshots/serve_obs.json``.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "serve_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_serve_obs import (  # noqa: E402
    build_report,
    deterministic_subset,
    render,
)

SECTIONS = ("clean", "chaos")


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestServeBench:
    @pytest.mark.parametrize("section", SECTIONS)
    def test_every_endpoint_serves_with_ordered_percentiles(
            self, report, section):
        for endpoint, stats in report[section]["endpoints"].items():
            assert stats["requests"] > 0, endpoint
            for table in ("ops", "latency_vtime_ms"):
                summary = stats[table]
                assert summary["count"] > 0, (endpoint, table)
                assert (summary["p50"] <= summary["p95"]
                        <= summary["p99"]), (endpoint, table)

    def test_cache_pays_off_on_query_heavy_traffic(self, report):
        assert report["clean"]["cache"]["hit_rate"] >= 0.5

    def test_keyed_policy_beats_wholesale_without_changing_detection(
            self, report):
        comparison = report["cache_policy"]
        assert comparison["keyed"]["policy"] == "keyed"
        assert comparison["wholesale"]["policy"] == "wholesale"
        assert comparison["hit_rate_delta"] > 0
        assert (comparison["keyed"]["invalidations"]
                < comparison["wholesale"]["invalidations"])
        assert comparison["detection_unchanged"]

    @pytest.mark.parametrize("section", SECTIONS)
    def test_admission_sheds_instead_of_overflowing(self, report, section):
        admission = report[section]["admission"]
        assert admission["unshed_overflows"] == 0
        assert admission["accounting_consistent"]
        assert (admission["offered"]
                == admission["admitted"] + admission["shed"])

    @pytest.mark.parametrize("section", SECTIONS)
    def test_online_equals_batch_under_load(self, report, section):
        assert report[section]["detection"]["online_equals_batch"]

    @pytest.mark.parametrize("section", SECTIONS)
    def test_quality_floors(self, report, section):
        detection = report[section]["detection"]
        assert detection["precision"] >= 0.95
        assert detection["recall"] >= 0.50
        assert detection["false_positive_rate"] <= 0.05

    def test_chaos_actually_injected_faults(self, report):
        chaos = report["chaos"]["chaos"]
        assert chaos["profile"] == "paper"
        assert chaos["connect_faults"] > 0
        assert chaos["injected_statuses"] > 0

    def test_matches_committed_snapshot(self, report):
        assert SNAPSHOT.exists(), (
            "run PYTHONPATH=src python scripts/export_serve_obs.py")
        committed = json.loads(SNAPSHOT.read_text())
        fresh = json.loads(render(deterministic_subset(report)))
        assert fresh["run"] == committed["run"], (
            "bench parameters differ from the committed snapshot; "
            "re-run with matching REPRO_BENCH_SERVE_* values")
        assert fresh == committed
