"""Table 4: per-IIP summary of offers and Play metadata.

The paper's qualitative claims: unvetted IIPs carry cheaper, mostly
no-activity offers for newer and far less popular apps; vetted IIPs
carry activity-heavy campaigns for established apps (median installs
500k-1M, median ages 557-854 days vs 33-70 days for unvetted).
"""

from repro.analysis.characterize import iip_summary_table
from repro.analysis.stats import median
from repro.core.reports import render_table4
from repro.iip.registry import UNVETTED_IIPS, VETTED_IIPS


def test_table4(benchmark, wild):
    rows = benchmark(iip_summary_table, wild.results.dataset,
                     wild.results.archive, VETTED_IIPS)
    print("\n" + render_table4(rows))
    by_name = {row.iip_name: row for row in rows}
    assert set(by_name) == set(VETTED_IIPS) | set(UNVETTED_IIPS)

    rankapp = by_name["RankApp"]
    ayet = by_name["ayeT-Studios"]
    fyber = by_name["Fyber"]

    # Unvetted: cheap, no-activity-dominated offers.
    assert rankapp.median_offer_payout_usd <= 0.04
    assert rankapp.no_activity_fraction > 0.7
    assert ayet.no_activity_fraction > 0.5
    # Vetted: activity-dominated.
    for name in ("Fyber", "AdscendMedia", "AdGem", "HangMyAds"):
        assert by_name[name].activity_fraction > 0.55

    # Popularity gap: vetted medians orders of magnitude above unvetted.
    vetted_installs = median([by_name[n].median_install_count
                              for n in VETTED_IIPS])
    unvetted_installs = median([by_name[n].median_install_count
                                for n in UNVETTED_IIPS])
    assert vetted_installs >= 100 * unvetted_installs

    # Age gap: unvetted apps are weeks old, vetted apps are years old.
    for name in UNVETTED_IIPS:
        assert by_name[name].median_app_age_days < 150
    for name in VETTED_IIPS:
        assert by_name[name].median_app_age_days > 300

    # Hundreds of developers from dozens of countries.
    assert fyber.developer_count > 0.7 * fyber.app_count
    assert fyber.country_count >= 15
