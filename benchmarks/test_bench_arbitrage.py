"""Section 4.3.2: arbitrage-style offers.

Paper: 3.9% of advertised apps use arbitrage offers (pay users to earn
in-app currency by completing further offers inside the app); 7% of
vetted-advertised vs 2% of unvetted-advertised apps.
"""

from repro.analysis.monetization import arbitrage_stats
from repro.core.reports import render_arbitrage
from repro.iip.registry import VETTED_IIPS


def test_arbitrage(benchmark, wild):
    stats = benchmark(arbitrage_stats, wild.results.dataset, VETTED_IIPS)
    print("\n" + render_arbitrage(stats))

    assert 0.01 < stats.overall_fraction < 0.10
    assert stats.vetted_fraction > stats.unvetted_fraction
    assert 0.03 < stats.vetted_fraction < 0.12
    assert stats.unvetted_fraction < 0.06
    assert stats.arbitrage_apps >= 3


def test_cost_recovery(benchmark, wild):
    """Section 4.3.2's open question, answered under an explicit model:
    engagement bought through usage/registration offers does NOT pay for
    itself through ads at realistic eCPMs."""
    from repro.analysis.revenue import (
        cost_recovery_analysis,
        summarize_cost_recovery,
    )
    economics = benchmark(cost_recovery_analysis, wild.results.dataset,
                          wild.results.apk_scan)
    summary = summarize_cost_recovery(economics)
    print(f"\noffers analysed: {summary.offers_analysed}, recouping: "
          f"{summary.recouping_fraction:.1%}, median ratio "
          f"{summary.median_recovery_ratio:.2f}")
    for kind, ratio in summary.recovery_by_kind.items():
        print(f"  {kind}: median recovery ratio {ratio:.2f}")
    assert summary.offers_analysed > 100
    # Direct recovery is the exception, not the rule.
    assert summary.recouping_fraction < 0.35
    assert summary.median_recovery_ratio < 1.0
    # Usage offers earn more of their cost back than no-activity offers
    # (that is the point of buying engagement)...
    assert (summary.recovery_by_kind["usage"]
            > summary.recovery_by_kind["no_activity"])
    # ...but still less than purchase offers, which recoup via IAP.
    assert (summary.recovery_by_kind["purchase"]
            > summary.recovery_by_kind["usage"])


def test_disclosure(benchmark, wild):
    """Section 5.1: notify developers of popular advertised apps."""
    import random
    from repro.disclosure.campaign import DisclosureCampaign
    campaign = DisclosureCampaign(wild.results.archive, wild.results.dataset)
    sent = benchmark.pedantic(
        campaign.notify_developers, args=(110, random.Random(0)),
        rounds=1, iterations=1)
    campaign.notify_google()
    print("\n" + campaign.render())
    summary = campaign.summary()
    assert summary["apps_selected"] >= 3
    assert sent <= summary["apps_selected"]
    assert summary["responders_unaware"] == summary["responses"]
    assert summary["google_acknowledged"]
