"""Table 5: install-count increases during campaigns.

Paper: 2% of baseline apps grew their binned install count over a
25-day window, vs 12% of vetted-advertised and 16% of
unvetted-advertised apps over their campaign windows; both chi-squared
tests reject independence (chi2 = 26.0 and 39.9).
"""

from repro.analysis.appstore_impact import install_increase_comparison
from repro.core.reports import render_table5


def test_table5(benchmark, wild):
    results = wild.results
    comparison = benchmark(
        install_increase_comparison,
        results.archive, results.dataset,
        wild.vetted, wild.unvetted,
        results.baseline_packages, results.baseline_window)
    print("\n" + render_table5(comparison))

    # Baseline rarely crosses a bin organically.
    assert comparison.baseline.fraction < 0.07
    # Advertised apps cross far more often; unvetted most of all.
    assert comparison.vetted.fraction > 2 * comparison.baseline.fraction
    assert comparison.unvetted.fraction > 2.5 * comparison.baseline.fraction
    assert comparison.unvetted.fraction > comparison.vetted.fraction
    # Both associations are statistically significant.
    assert comparison.vetted_vs_baseline.rejects_null()
    assert comparison.unvetted_vs_baseline.rejects_null()
    # Rough magnitudes: paper saw 12% / 16%.
    assert 0.05 < comparison.vetted.fraction < 0.25
    assert 0.08 < comparison.unvetted.fraction < 0.30
