"""Table 1: characterisation of the seven IIPs."""

from repro.core.reports import render_table1
from repro.iip.registry import IIP_CONFIGS, TABLE1_ROWS, UNVETTED_IIPS, VETTED_IIPS


def test_table1(benchmark):
    text = benchmark(render_table1)
    print("\n" + text)
    assert len(TABLE1_ROWS) == 7
    assert len(VETTED_IIPS) == 5
    assert len(UNVETTED_IIPS) == 2
    # The operational distinction behind the labels is reproduced too.
    for name in VETTED_IIPS:
        assert IIP_CONFIGS[name].requires_documentation
        assert IIP_CONFIGS[name].min_deposit_usd >= 1000
    for name in UNVETTED_IIPS:
        assert not IIP_CONFIGS[name].requires_documentation
        assert IIP_CONFIGS[name].min_deposit_usd <= 20
