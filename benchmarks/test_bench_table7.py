"""Table 7: funding raised after incentivized install campaigns.

Paper: of Crunchbase-matched developers, 6.1% of baseline apps raised
after the window start vs 15.6% of vetted-advertised (chi2 4.7,
significant) and 13.9% of unvetted-advertised apps (chi2 2.8, not
conclusive); match rates were 27% baseline / 39% vetted / 15% unvetted.
"""

from repro.analysis.funding import funding_comparison
from repro.core.reports import render_table7


def test_table7(benchmark, wild):
    results = wild.results
    comparison = benchmark(
        funding_comparison,
        results.archive, results.dataset, results.snapshot,
        wild.vetted, wild.unvetted,
        results.baseline_packages, results.baseline_window[0])
    print("\n" + render_table7(comparison))

    # Match-rate ordering: vetted > baseline > unvetted (established
    # developers have discoverable web presences; unvetted mostly not).
    assert comparison.vetted.match_rate > comparison.baseline.match_rate
    assert comparison.baseline.match_rate > comparison.unvetted.match_rate
    assert 0.25 < comparison.vetted.match_rate < 0.55
    assert 0.08 < comparison.unvetted.match_rate < 0.30

    # Funded-after-campaign: advertised apps raise ~2x more often.
    assert (comparison.vetted.funded_fraction
            > 1.3 * comparison.baseline.funded_fraction)
    assert 0.08 < comparison.vetted.funded_fraction < 0.30
    assert comparison.unvetted.funded_fraction > comparison.baseline.funded_fraction

    # A couple dozen advertised apps belong to public companies.
    assert comparison.public_company_apps >= 3
