"""Section 5.2: Google Play's enforcement is weak.

Paper: no install-count decreases for baseline or vetted-advertised
apps over three months; decreases for only ~2% of unvetted-advertised
apps (e.g. 1,000+ -> 500+).  Separately, the honey app's 1,679 openly
purchased installs were never filtered.
"""

from repro.analysis.appstore_impact import enforcement_decreases
from repro.core.reports import render_enforcement


def test_enforcement(benchmark, wild):
    results = wild.results
    observations = benchmark(enforcement_decreases, results.archive, {
        "Baseline": results.baseline_packages,
        "Vetted": wild.vetted,
        "Unvetted": wild.unvetted,
    })
    print("\n" + render_enforcement(observations))
    by_label = {obs.label: obs for obs in observations}

    # Never baseline, never vetted.
    assert by_label["Baseline"].decreased == 0
    assert by_label["Vetted"].decreased == 0
    # Unvetted occasionally -- but only a tiny fraction.
    assert by_label["Unvetted"].fraction < 0.06


def test_honey_installs_survive_enforcement(benchmark, honey):
    """The paper's observable: the honey app's public install count
    reached 1,000+ and never visibly decreased.  (Even if the store
    filters one crude campaign, removing <=503 of 1,679 installs cannot
    cross back below the 1,000 bin edge -- enforcement that the bins
    hide is enforcement the ecosystem never sees.)"""
    results, world = honey
    from repro.honeyapp.app import HONEY_PACKAGE
    displayed = benchmark(world.store.displayed_installs, HONEY_PACKAGE, 60)
    assert results.enforcement_actions <= 1
    assert displayed >= 1000
    assert results.displayed_installs_after >= 1000
