"""Section 3: the honey-app experiment, end to end.

Paper numbers this bench checks the shape of: 1,679 installs total
(626/550/503), install count 0 -> 1,000+, 45% of RankApp installs
missing telemetry, 44%/44%/6% record-click rates, engagement collapsing
after one day, emulator/cloud/device-farm automation signals, and
money-keyword affiliate apps on 42%/72%/98% of worker devices.
"""

from repro.core.reports import render_honey_report


def summarize(results):
    return {
        "acquisition": {s.iip_name: s for s in results.analysis.acquisition()},
        "engagement": {s.iip_name: s for s in results.analysis.engagement()},
        "automation": results.analysis.automation(),
        "co_installs": results.analysis.co_installs(),
    }


def test_section3(benchmark, honey):
    results, world = honey
    summary = benchmark(summarize, results)
    print("\n" + render_honey_report(results))

    acquisition = summary["acquisition"]
    assert results.total_installs() == 1679
    assert acquisition["Fyber"].installs == 626
    assert acquisition["ayeT-Studios"].installs == 550
    assert acquisition["RankApp"].installs == 503
    assert 0.35 < acquisition["RankApp"].missing_fraction < 0.55
    assert acquisition["Fyber"].delivery_hours < 3
    assert acquisition["RankApp"].delivery_hours > 24

    engagement = summary["engagement"]
    assert 0.35 < engagement["Fyber"].click_rate < 0.53
    assert engagement["RankApp"].click_rate < 0.12
    for s in engagement.values():
        assert s.clicked_day_after < s.clicked_record  # engagement fades

    automation = summary["automation"]
    assert automation.emulator_installs >= 1
    assert automation.cloud_asn_devices >= 2
    assert automation.farms and automation.farms[0].installs == 20
    assert automation.farms[0].rooted_sharing_ssid >= 14

    co = summary["co_installs"]
    rates = co.money_keyword_fraction_by_iip
    assert rates["RankApp"] > rates["ayeT-Studios"] > rates["Fyber"]
    assert co.top_affiliate_by_iip["RankApp"][0] == "eu.gcashapp"
    assert co.total_unique_packages > 5000

    # The manipulation worked and was not enforced away.
    assert results.displayed_installs_before == 0
    assert results.displayed_installs_after >= 1000
    # Cost per install is cents (paper: ~$0.06-0.10 range).
    assert results.mean_cost_per_install < 0.30
