"""Per-table snapshot bench: pin every rendered table's content hash.

``scripts/export_table_obs.py`` commits a hash per paper table at the
bench parameters; this bench re-renders all eight from the session's
wild bundle and asserts nothing drifted, so a change that moves any
table shows up as a named diff (``table5 moved``) instead of a silent
re-render in CI logs.
"""

import hashlib
import json
import sys
from pathlib import Path

import pytest

from benchmarks.conftest import (
    BENCH_DAYS,
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_SHARDS,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "table_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_table_obs import render_tables  # noqa: E402


@pytest.fixture(scope="module")
def committed():
    assert SNAPSHOT.exists(), (
        "run PYTHONPATH=src python scripts/export_table_obs.py")
    return json.loads(SNAPSHOT.read_text())


def test_bench_parameters_match(committed):
    assert committed["run"] == {
        "seed": BENCH_SEED, "scale": BENCH_SCALE,
        "days": BENCH_DAYS, "shards": BENCH_SHARDS,
    }, ("bench parameters differ from the committed snapshot; "
        "re-run with matching REPRO_BENCH_* values")


def test_tables_match_committed_hashes(benchmark, wild, committed):
    tables = benchmark(render_tables, wild.results, wild.vetted,
                       wild.unvetted)
    assert set(tables) == set(committed["tables"])
    drifted = []
    for name, text in sorted(tables.items()):
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        pinned = committed["tables"][name]
        if (digest != pinned["sha256"]
                or text.count("\n") + 1 != pinned["lines"]):
            drifted.append(name)
    assert drifted == [], (
        f"tables moved: {drifted} "
        "(re-run scripts/export_table_obs.py if intentional)")


def test_inputs_match_committed(wild, committed):
    assert committed["inputs"] == {
        "offers": wild.results.dataset.offer_count(),
        "vetted_packages": len(wild.vetted),
        "unvetted_packages": len(wild.unvetted),
    }
