"""Table 2: affiliate apps and the IIP offer walls they integrate.

The measured version: the integration matrix rediscovered by the milker
from intercepted traffic must match the registry ground truth for every
instrumented affiliate app.
"""

from collections import defaultdict

from repro.affiliates.registry import AFFILIATE_SPECS
from repro.core.reports import render_table2


def observed_integrations(observations):
    walls = defaultdict(set)
    for observation in observations:
        walls[observation.affiliate_package].add(observation.iip_name)
    return walls


def test_table2(benchmark, wild):
    walls = benchmark(observed_integrations, wild.results.observations)
    print("\n" + render_table2(walls))
    assert len(walls) == 8
    for package, iips in walls.items():
        assert iips <= set(AFFILIATE_SPECS[package].integrated_iips)
    # Every wall each app integrates was actually observed at least once
    # (campaigns run on all seven IIPs throughout the window).
    covered = set().union(*walls.values())
    assert len(covered) == 7
