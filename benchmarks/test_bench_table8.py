"""Table 8: offer mix and payouts of the funded vetted apps.

Paper: the 30 vetted-advertised apps that raised funding used both
offer types (67% no-activity, 63% activity -- they overlap) and paid
roughly twice the ecosystem-average payout ($0.12 no-activity vs the
global $0.06; $0.92 activity vs the global $0.52): developers chasing
funding acquire users aggressively.
"""

from repro.analysis.characterize import offer_type_table
from repro.analysis.funding import funded_offer_breakdown, funded_packages
from repro.core.reports import render_table8


def test_table8(benchmark, wild):
    results = wild.results
    funded = funded_packages(results.archive, results.dataset,
                             results.snapshot, wild.vetted)
    breakdown = benchmark(funded_offer_breakdown, results.dataset, funded)
    print("\n" + render_table8(breakdown))

    assert breakdown.funded_app_count >= 5
    # Funded apps run both offer types (fractions overlap past 100%).
    assert breakdown.no_activity_app_fraction > 0.4
    assert breakdown.activity_app_fraction > 0.4
    assert (breakdown.no_activity_app_fraction
            + breakdown.activity_app_fraction) > 1.0

    # Their campaigns pay more than the ecosystem average.
    global_rows = {row.label: row for row in offer_type_table(results.dataset)}
    assert (breakdown.activity_average_payout
            > global_rows["Activity"].average_payout_usd)
    assert (breakdown.no_activity_average_payout
            > global_rows["No activity"].average_payout_usd)
