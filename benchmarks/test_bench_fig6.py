"""Figure 6: CDF of unique ad libraries per app.

Paper: 60% of activity-offer apps vs 25% of no-activity-offer apps have
5+ ad libraries (Figure 6a); 55% vetted vs 20% unvetted vs 35% baseline
(Figure 6b) -- activity campaigns are built to monetize the engagement
they buy.
"""

from repro.analysis.monetization import (
    ad_library_distribution,
    split_packages_by_offer_type,
)
from repro.core.reports import render_fig6


def build_groups(wild):
    groups = dict(split_packages_by_offer_type(wild.results.dataset))
    groups["Vetted"] = wild.vetted
    groups["Unvetted"] = wild.unvetted
    groups["Baseline"] = wild.results.baseline_packages
    return groups


def test_fig6(benchmark, wild):
    groups = build_groups(wild)
    distributions = benchmark(ad_library_distribution,
                              wild.results.apk_scan, groups)
    print("\n" + render_fig6(distributions))
    by_label = {d.label: d for d in distributions}

    activity = by_label["Activity offers"].fraction_with_at_least(5)
    no_activity = by_label["No activity offers"].fraction_with_at_least(5)
    vetted = by_label["Vetted"].fraction_with_at_least(5)
    unvetted = by_label["Unvetted"].fraction_with_at_least(5)
    baseline = by_label["Baseline"].fraction_with_at_least(5)

    # Figure 6a: activity apps carry far more ad SDKs.
    assert activity > no_activity + 0.15
    assert 0.4 < activity < 0.75
    assert no_activity < 0.35
    # Figure 6b: vetted > baseline > unvetted.
    assert vetted > baseline > unvetted
    assert 0.4 < vetted < 0.75
    assert unvetted < 0.35
    # CDFs are proper distributions.
    for distribution in distributions:
        series = distribution.series(max_count=30)
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] == 1.0
