"""Figure 4: install-count histogram of the baseline apps.

Paper: the 300 Lumen-sampled baseline apps cover every popularity band
from <1k to >1000M installs, with the bulk between 100k and 100M.
"""

from repro.analysis.characterize import install_count_histogram
from repro.core.reports import render_fig4


def test_fig4(benchmark, wild):
    archive = wild.results.archive
    installs = [archive.first_profile(p).installs_floor
                for p in wild.results.baseline_packages
                if archive.first_profile(p) is not None]
    histogram = benchmark(install_count_histogram, installs)
    print("\n" + render_fig4(histogram))

    counts = dict(histogram)
    # Every popularity band is populated.
    populated = [label for label, count in histogram if count > 0]
    assert len(populated) >= 7
    # The mode sits in the mid-popularity bands, tails are thin.
    peak_label = max(histogram, key=lambda pair: pair[1])[0]
    assert peak_label in ("100k-1M", "1M-10M")
    assert counts["1000M+"] < counts["1M-10M"]
    assert counts["0-1k"] < counts["1M-10M"]
    # All baseline apps were profiled.
    assert sum(counts.values()) == len(wild.results.baseline_packages)
