"""Figure 1: the end-to-end campaign workflow and money waterfall.

Benchmarks one full offer lifecycle -- developer deposit, campaign
creation, wall distribution over HTTPS, worker completion, mediator
certification, four-party disbursement -- and asserts conservation of
money plus the documented ordering of cuts.
"""

import random

import pytest

from repro.affiliates.app import AffiliateAppRuntime, AffiliateAppSpec
from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.offers import OfferCategory, tasks_for
from repro.iip.offerwall import OfferWallServer
from repro.iip.platform import DeveloperCredentials
from repro.iip.registry import build_platforms
from repro.net.client import HttpClient
from repro.net.fabric import NetworkFabric
from repro.net.tls import CertificateAuthority, TrustStore
from repro.users.devices import DeviceFactory
from repro.users.worker import Worker, WorkerBehavior


def run_workflow():
    rng = random.Random(123)
    fabric = NetworkFabric()
    ca = CertificateAuthority("Root", rng)
    trust = TrustStore()
    trust.add_root(ca.self_certificate())
    ledger = MoneyLedger()
    mediator = AttributionMediator()
    platforms = build_platforms(ledger, mediator)
    fyber = platforms["Fyber"]
    fyber.register_developer(DeveloperCredentials(
        developer_id="dev", tax_id="T", bank_account="B"))
    ledger.mint("dev", 5000.0, day=0)
    campaign = fyber.create_campaign(
        developer_id="dev", package="com.example.app", app_title="App",
        description="Install and Launch", payout_usd=0.06,
        category=OfferCategory.NO_ACTIVITY, activity_kind=None,
        tasks=tasks_for(OfferCategory.NO_ACTIVITY, None),
        installs=10, start_day=0, end_day=25)
    fyber.launch(campaign.campaign_id, 0)
    wall = OfferWallServer(fabric, fyber, ca, rng, current_day=lambda: 0)
    spec = AffiliateAppSpec(package="com.aff.app", title="Aff",
                            installs_display="1M+",
                            integrated_iips=("Fyber",),
                            currency_name="coins", points_per_usd=1000.0)
    wall.register_affiliate(spec.wall_config())
    factory = DeviceFactory(fabric.asn_db, rng)
    worker = Worker("worker-1", factory.real_phone("IN", trust_store=trust),
                    WorkerBehavior())
    client = HttpClient(fabric, worker.device.endpoint,
                        worker.device.trust_store, rng)
    runtime = AffiliateAppRuntime(spec, client, {"Fyber": wall}, platforms)
    runtime.open()
    runtime.select_tab("Fyber")
    offer = runtime.visible_offers()[0]
    result = worker.work_offer(campaign.offer, 0, rng)
    paid = runtime.complete_offer(offer, worker, result, 0)
    return ledger, mediator, campaign, worker, paid


def test_fig1_workflow(benchmark):
    ledger, mediator, campaign, worker, paid = benchmark(run_workflow)
    assert paid
    assert campaign.delivered == 1
    assert mediator.total_conversions == 1

    balances = {owner: ledger.wallet(owner).balance_usd
                for owner in ("dev", "Fyber", "com.aff.app", "worker-1",
                              mediator.name)}
    # Money is conserved across the waterfall.
    assert sum(balances.values()) == pytest.approx(5000.0)
    # The worker received the advertised payout, intermediaries their cuts.
    assert balances["worker-1"] == pytest.approx(0.06)
    assert 0 < balances["Fyber"] < 0.06
    assert 0 < balances["com.aff.app"] < 0.06
    assert balances[mediator.name] == pytest.approx(0.03)
    # Incentivized installs cost cents, not the $1.22 of regular ads.
    assert campaign.advertiser_cost_per_install_usd < 0.25
