"""Wild-measurement perf bench: what the crawl cache buys, pinned.

``scripts/export_bench_obs.py`` runs the pipeline with the crawler's
(package, day) cache on and off at the bench scale; this bench asserts
the headline claims (fabric requests down >= 20%, a real cache hit
rate, op-cost histograms populated) and pins the deterministic subset
against the committed ``benchmarks/snapshots/wild_obs.json`` so a
request-count regression cannot land silently.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "wild_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_bench_obs import (  # noqa: E402
    DAYS as BENCH_DAYS,
    build_report,
    deterministic_subset,
    render,
)


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestPerf:
    def test_cache_cuts_fabric_requests_by_a_fifth(self, report):
        fabric = report["fabric"]
        assert fabric["requests"] < fabric["requests_uncached"]
        assert fabric["reduction"] >= 0.20

    def test_cache_hit_rate_is_real(self, report):
        cache = report["cache"]
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] < 1.0
        # Every avoided crawl request is an avoided fabric connection.
        crawl = report["crawl"]
        assert (crawl["requests_uncached"] - crawl["requests"]
                == report["fabric"]["requests_uncached"]
                - report["fabric"]["requests"])

    def test_op_cost_histograms_cover_every_day_phase(self, report):
        op_cost = report["op_cost"]
        milk_days = (BENCH_DAYS + 1) // 2
        crawl_days = (BENCH_DAYS + 1) // 2
        assert op_cost["wild.milk_ops"]["count"] == milk_days
        assert op_cost["wild.crawl_ops"]["count"] == crawl_days
        assert op_cost["wild.analyse_ops"]["count"] == 1
        assert (op_cost["wild.milk_ops"]["p99_ops"]
                >= op_cost["wild.milk_ops"]["p50_ops"])

    def test_matches_committed_snapshot(self, report):
        assert SNAPSHOT.exists(), (
            "run PYTHONPATH=src python scripts/export_bench_obs.py")
        committed = json.loads(SNAPSHOT.read_text())
        fresh = json.loads(render(deterministic_subset(report)))
        assert fresh["run"] == committed["run"], (
            "bench parameters differ from the committed snapshot; "
            "re-run with matching REPRO_BENCH_* values")
        assert fresh == committed
