"""Wild-measurement perf bench: what the crawl cache buys, pinned.

``scripts/export_bench_obs.py`` runs the pipeline with the crawler's
(package, day) cache on and off at the bench scale; this bench asserts
the headline claims (fabric requests down >= 20%, a real cache hit
rate, op-cost histograms populated), gates the wall clock, peak RSS,
and device throughput at the canonical ``--shards 4 --backend
process`` config, and pins the deterministic subset against the
committed ``benchmarks/snapshots/wild_obs.json`` so a request-count
regression cannot land silently.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "benchmarks" / "snapshots" / "wild_obs.json"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from export_bench_obs import (  # noqa: E402
    BACKEND as BENCH_BACKEND,
    DAYS as BENCH_DAYS,
    SHARDS as BENCH_SHARDS,
    build_report,
    deterministic_subset,
    render,
)

#: Wall-clock ceiling for the canonical bench config (shards=4, process
#: backend): the serial pre-optimisation baseline ran 34.8s, so this
#: pins a >= 2x end-to-end speedup with headroom for runner jitter.
WALL_GATE_SECONDS = 17.4
CANONICAL = BENCH_SHARDS == 4 and BENCH_BACKEND == "process"


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestPerf:
    def test_cache_cuts_fabric_requests_by_a_fifth(self, report):
        fabric = report["fabric"]
        assert fabric["requests"] < fabric["requests_uncached"]
        assert fabric["reduction"] >= 0.20

    def test_cache_hit_rate_is_real(self, report):
        cache = report["cache"]
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] < 1.0
        # Every avoided crawl request is an avoided fabric connection.
        crawl = report["crawl"]
        assert (crawl["requests_uncached"] - crawl["requests"]
                == report["fabric"]["requests_uncached"]
                - report["fabric"]["requests"])

    def test_op_cost_histograms_cover_every_day_phase(self, report):
        op_cost = report["op_cost"]
        milk_days = (BENCH_DAYS + 1) // 2
        crawl_days = (BENCH_DAYS + 1) // 2
        assert op_cost["wild.milk_ops"]["count"] == milk_days
        assert op_cost["wild.crawl_ops"]["count"] == crawl_days
        # Four finalize stages (apk scan, snapshot, frame, coverage),
        # each advancing the op clock by its real unit-of-work count.
        assert op_cost["wild.analyse_ops"]["count"] == 4
        assert op_cost["wild.analyse_ops"]["max_ops"] > 100
        assert (op_cost["wild.milk_ops"]["p99_ops"]
                >= op_cost["wild.milk_ops"]["p50_ops"])

    def test_wall_clock_meets_process_backend_gate(self, report):
        if not CANONICAL:
            pytest.skip("wall gate is pinned at the canonical "
                        "shards=4 process-backend config")
        assert report["wall_seconds"]["measured"] <= WALL_GATE_SECONDS
        assert (report["wall_seconds"]["measured"]
                < report["wall_seconds"]["baseline_uncached"])

    def test_device_throughput_is_reported_and_real(self, report):
        throughput = report["devices_per_sec"]
        assert throughput["measured"] > throughput["baseline_uncached"] > 0
        if CANONICAL:
            # milk_runs / WALL_GATE_SECONDS at the bench scale.
            assert throughput["measured"] >= 50.0

    def test_peak_rss_is_tracked_and_bounded(self, report):
        rss = report["peak_rss_mb"]
        assert rss["self"] > 0
        assert rss["total"] == pytest.approx(
            rss["self"] + rss["children"], abs=0.1)
        # The whole bench (parent + reaped workers) fits in 4 GB.
        assert rss["total"] < 4096
        if CANONICAL:
            # The process pool really ran: reaped workers left a
            # nonzero child high-water mark.
            assert rss["children"] > 0

    def test_shard_routing_is_memoised_fast(self, report):
        assert report["scheduler"]["memoised_calls_per_sec"] >= 100_000

    def test_matches_committed_snapshot(self, report):
        assert SNAPSHOT.exists(), (
            "run PYTHONPATH=src python scripts/export_bench_obs.py")
        committed = json.loads(SNAPSHOT.read_text())
        fresh = json.loads(render(deterministic_subset(report)))
        assert fresh["run"] == committed["run"], (
            "bench parameters differ from the committed snapshot; "
            "re-run with matching REPRO_BENCH_* values")
        assert fresh == committed
