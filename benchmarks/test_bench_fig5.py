"""Figure 5: case-study rank timelines.

Paper: TREBEL entered the top-games chart after its registration/usage
campaign started, and World on Fire entered top-grossing days after its
purchase-offer campaign started.  Here we locate equivalent case-study
apps in the measured data -- advertised apps absent from charts before
their campaign and present after -- and regenerate their timelines.
"""

import pytest

from repro.analysis.appstore_impact import case_study_timeline
from repro.core.reports import render_fig5
from repro.playstore.charts import ChartKind


def find_case_studies(archive, dataset, packages):
    found = []
    for package in packages:
        for chart in (ChartKind.TOP_FREE.value, ChartKind.TOP_GAMES.value,
                      ChartKind.TOP_GROSSING.value):
            timeline = case_study_timeline(archive, dataset, package, chart)
            if timeline.appeared_after_campaign_start():
                found.append(timeline)
                break
    return found


def test_fig5(benchmark, wild):
    results = wild.results
    case_studies = benchmark(find_case_studies, results.archive,
                             results.dataset, wild.vetted)
    if not case_studies:
        pytest.skip("no chart entry among vetted apps at this scale/seed")
    timeline = case_studies[0]
    print("\n" + render_fig5(timeline))
    print(f"\n{len(case_studies)} vetted case-study apps entered charts "
          f"after campaign start")

    # The defining property of Figure 5's case studies.
    assert timeline.appeared_after_campaign_start()
    in_chart_days = [p.day for p in timeline.points if p.percentile is not None]
    assert in_chart_days
    assert min(in_chart_days) >= timeline.campaign_start
    # Several vetted apps show the pattern, not just one.
    assert len(case_studies) >= 2
