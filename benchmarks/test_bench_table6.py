"""Table 6: appearance in top charts after campaign start.

Paper: of apps not already charting, 3.1% of baseline apps appeared in
a top chart over 25 days vs 7.5% of vetted-advertised apps (chi2 5.43,
significant) and 2.5% of unvetted-advertised apps (chi2 0.22, NOT
significant): only vetted IIPs' activity offers can inflate the
engagement signals charts rank by.
"""

from repro.analysis.appstore_impact import top_chart_comparison
from repro.core.reports import render_table6


def test_table6(benchmark, wild):
    results = wild.results
    comparison = benchmark(
        top_chart_comparison,
        results.archive, results.dataset,
        wild.vetted, wild.unvetted,
        results.baseline_packages, results.baseline_window)
    print("\n" + render_table6(comparison))

    # Vetted campaigns lift apps into charts well above baseline churn.
    assert comparison.vetted.fraction > 1.5 * comparison.baseline.fraction
    assert comparison.vetted_vs_baseline.rejects_null()
    # Unvetted campaigns do not beat baseline churn.
    assert comparison.unvetted.fraction < comparison.baseline.fraction + 0.02
    assert comparison.unvetted.fraction < comparison.vetted.fraction
    # Pre-charting apps were excluded, shrinking every group (the paper
    # goes from 300/492/538 considered to 261/320/484).
    assert comparison.vetted.total < len(wild.vetted)
    assert comparison.baseline.total < len(results.baseline_packages)
